// Package bitio provides bit-granularity readers and writers used by the
// compressed-index and compressed-text codecs.
//
// Bits are written most-significant-bit first within each byte, matching the
// layout used by the MG system's compressed inverted files. A Writer
// accumulates bits into an internal buffer; Bytes returns the padded result.
// A Reader consumes bits from a byte slice and tracks its position so that
// skip pointers (byte+bit offsets) can be followed.
package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the input.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of input")

// Writer accumulates bits MSB-first into a growable byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte // bits accumulated for the in-progress byte
	ncur uint // number of valid bits in cur (0..7)
}

// NewWriter returns a Writer with capacity for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(bit uint) {
	w.cur = w.cur<<1 | byte(bit&1)
	w.ncur++
	if w.ncur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.ncur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i) & 1))
	}
}

// WriteUnary appends v encoded in unary: v one-bits followed by a zero.
func (w *Writer) WriteUnary(v uint64) {
	for i := uint64(0); i < v; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.ncur)
}

// Bytes flushes the in-progress byte (zero-padded) and returns the buffer.
// The Writer remains usable; the returned slice aliases internal storage
// until the next Write call, so callers that keep it must copy.
func (w *Writer) Bytes() []byte {
	out := w.buf
	if w.ncur > 0 {
		out = append(out, w.cur<<(8-w.ncur))
	}
	return out
}

// Reset discards all written bits, retaining allocated capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.ncur = 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	data []byte
	pos  int  // next byte index
	cur  byte // remaining bits of the current byte, left-aligned
	ncur uint // number of valid bits in cur
}

// NewReader returns a Reader over data. The Reader does not copy data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Reset repoints the Reader at data from bit 0, discarding any consumed
// state. It lets callers that hold a Reader by value re-use it across many
// inputs without allocating.
func (r *Reader) Reset(data []byte) {
	r.data = data
	r.pos = 0
	r.cur, r.ncur = 0, 0
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.ncur == 0 {
		if r.pos >= len(r.data) {
			return 0, ErrUnexpectedEOF
		}
		r.cur = r.data[r.pos]
		r.pos++
		r.ncur = 8
	}
	bit := uint(r.cur >> 7)
	r.cur <<= 1
	r.ncur--
	return bit, nil
}

// ReadBits reads n bits (n ≤ 64) and returns them right-aligned.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(bit)
	}
	return v, nil
}

// ReadUnary reads a unary-coded value: the count of one-bits before a zero.
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if bit == 0 {
			return v, nil
		}
		v++
	}
}

// BitPos reports the number of bits consumed so far.
func (r *Reader) BitPos() int {
	return r.pos*8 - int(r.ncur)
}

// SeekBit positions the reader at an absolute bit offset.
func (r *Reader) SeekBit(bit int) error {
	if bit < 0 || bit > len(r.data)*8 {
		return fmt.Errorf("bitio: seek to bit %d outside input of %d bits", bit, len(r.data)*8)
	}
	r.pos = bit / 8
	rem := uint(bit % 8)
	if rem == 0 {
		r.cur, r.ncur = 0, 0
		return nil
	}
	r.cur = r.data[r.pos] << rem
	r.ncur = 8 - rem
	r.pos++
	return nil
}

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int {
	return len(r.data)*8 - r.BitPos()
}
