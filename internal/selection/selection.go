// Package selection ranks subcollections by their likelihood of holding
// answers for a query, using only the per-librarian term statistics the
// receptionist's merged vocabulary already contains. It implements the
// CORI collection-ranking formula (Callan et al., the selection baseline
// of the federated digital-library literature cited in PAPERS.md): each
// collection is treated as one giant document, term "frequency" is the
// collection's document frequency, and the df-normalising constants take
// the role tf normalisation plays in document ranking.
//
// Scores exist only to order collections for top-R fan-out; they are never
// mixed into document scores, so the receptionist's merge stays exactly
// comparable to full fan-out.
package selection

import (
	"math"
	"sort"
)

// belief is CORI's default belief floor: the score a collection gets for a
// term it does not hold at all.
const belief = 0.4

// Collection is one subcollection's term statistics as the receptionist
// knows them: the librarian's name, its document count, and its document
// frequency per term (the f_t map shipped during SetupVocabulary).
type Collection struct {
	Name string
	Docs uint32
	// DF maps term -> number of the collection's documents containing it.
	// The map is read, never written; callers may share it with other
	// holders (the federation's vocabState does).
	DF map[string]uint32
}

// Index is an immutable collection-selection index: per-collection df
// normalisers and global collection frequencies, precomputed once so
// per-query scoring is a handful of map lookups per (term, collection)
// pair. Build one with New; it is safe for concurrent use.
type Index struct {
	names []string
	df    []map[string]uint32
	// denom[i] = 50 + 150·cw_i/avg_cw is the CORI df normaliser, with the
	// collection "word count" cw_i proxied by Σ_t df_i(t) — the only mass
	// statistic the vocabulary exchange carries.
	denom []float64
	// cf[t] counts collections whose DF contains t (CORI's collection
	// frequency).
	cf map[string]uint32
	// logC1 caches log(C+1.0), the denominator of the scaled idf term.
	logC1 float64
}

// New builds a selection index over the given collections. The order of
// cols fixes the index numbering (callers align it with the federation's
// global librarian numbering). Nil or empty input yields an index that
// selects nothing.
func New(cols []Collection) *Index {
	ix := &Index{
		names: make([]string, len(cols)),
		df:    make([]map[string]uint32, len(cols)),
		denom: make([]float64, len(cols)),
		cf:    make(map[string]uint32),
	}
	var totalCW float64
	cw := make([]float64, len(cols))
	for i, c := range cols {
		ix.names[i] = c.Name
		ix.df[i] = c.DF
		for t, df := range c.DF {
			if df > 0 {
				ix.cf[t]++
				cw[i] += float64(df)
			}
		}
		totalCW += cw[i]
	}
	avgCW := 1.0
	if len(cols) > 0 && totalCW > 0 {
		avgCW = totalCW / float64(len(cols))
	}
	for i := range cols {
		ix.denom[i] = 50 + 150*cw[i]/avgCW
	}
	ix.logC1 = math.Log(float64(len(cols)) + 1.0)
	return ix
}

// Len returns the number of collections in the index.
func (ix *Index) Len() int { return len(ix.names) }

// Name returns the name of collection i.
func (ix *Index) Name(i int) string { return ix.names[i] }

// Score computes the CORI belief score of every collection for the given
// query terms: score_i = mean_t p(t|c_i) with
//
//	p(t|c_i) = b + (1−b)·T·I
//	T = df_i(t) / (df_i(t) + 50 + 150·cw_i/avg_cw)
//	I = log((C+0.5)/cf_t) / log(C+1.0)
//
// Terms are deduplicated, terms absent from every collection are dropped
// (they cannot discriminate), and the surviving terms are summed in sorted
// order so the floating-point result is bit-identical regardless of the
// caller's term ordering. A query with no surviving terms scores every
// collection at the belief floor.
func (ix *Index) Score(terms []string) []float64 {
	scores := make([]float64, len(ix.names))
	kept := ix.keepTerms(terms)
	if len(kept) == 0 {
		for i := range scores {
			scores[i] = belief
		}
		return scores
	}
	c := float64(len(ix.names))
	for _, t := range kept {
		idf := math.Log((c+0.5)/float64(ix.cf[t])) / ix.logC1
		for i := range scores {
			df := float64(ix.df[i][t])
			tf := df / (df + ix.denom[i])
			scores[i] += belief + (1-belief)*tf*idf
		}
	}
	n := float64(len(kept))
	for i := range scores {
		scores[i] /= n
	}
	return scores
}

// keepTerms deduplicates terms, drops those no collection holds, and sorts
// the survivors (deterministic summation order).
func (ix *Index) keepTerms(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	kept := terms[:0:0]
	for _, t := range terms {
		if !seen[t] && ix.cf[t] > 0 {
			seen[t] = true
			kept = append(kept, t)
		}
	}
	sort.Strings(kept)
	return kept
}

// Top returns the indexes of the top-r collections for the query terms,
// drawn from candidates (nil means every collection), in ascending index
// order. Ranking is by score descending with ties broken by ascending
// index, so the result is deterministic. r <= 0 selects nothing; r >=
// len(candidates) selects every candidate.
func (ix *Index) Top(terms []string, candidates []int, r int) []int {
	if r <= 0 || len(ix.names) == 0 {
		return nil
	}
	if candidates == nil {
		candidates = make([]int, len(ix.names))
		for i := range candidates {
			candidates[i] = i
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	scores := ix.Score(terms)
	ranked := make([]int, len(candidates))
	copy(ranked, candidates)
	sort.SliceStable(ranked, func(a, b int) bool {
		ia, ib := ranked[a], ranked[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return ia < ib
	})
	if r < len(ranked) {
		ranked = ranked[:r]
	}
	out := make([]int, len(ranked))
	copy(out, ranked)
	sort.Ints(out)
	return out
}
