package selection

import (
	"reflect"
	"testing"
)

// testIndex builds three topically distinct collections: AP holds "alpha"
// heavily, FR holds "federal", WSJ holds "wallstreet"; all three share
// "common".
func testIndex() *Index {
	return New([]Collection{
		{Name: "AP", Docs: 100, DF: map[string]uint32{"alpha": 80, "common": 40, "federal": 2}},
		{Name: "FR", Docs: 100, DF: map[string]uint32{"federal": 75, "common": 35}},
		{Name: "WSJ", Docs: 100, DF: map[string]uint32{"wallstreet": 90, "common": 45, "alpha": 1}},
	})
}

func TestTopRanksTopicalHome(t *testing.T) {
	ix := testIndex()
	cases := []struct {
		terms []string
		want  []int
	}{
		{[]string{"alpha"}, []int{0}},
		{[]string{"federal"}, []int{1}},
		{[]string{"wallstreet"}, []int{2}},
	}
	for _, tc := range cases {
		if got := ix.Top(tc.terms, nil, 1); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Top(%v, nil, 1) = %v, want %v", tc.terms, got, tc.want)
		}
	}
}

func TestTopReturnsAscendingIndexes(t *testing.T) {
	ix := testIndex()
	// "alpha federal" ranks AP and FR above WSJ; the result must come back
	// in ascending index order regardless of score order.
	got := ix.Top([]string{"federal", "alpha"}, nil, 2)
	if want := []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Top = %v, want %v", got, want)
	}
}

func TestTopRZeroAndOversized(t *testing.T) {
	ix := testIndex()
	if got := ix.Top([]string{"alpha"}, nil, 0); got != nil {
		t.Errorf("Top with r=0 = %v, want nil", got)
	}
	if got := ix.Top([]string{"alpha"}, nil, -3); got != nil {
		t.Errorf("Top with r<0 = %v, want nil", got)
	}
	got := ix.Top([]string{"alpha"}, nil, 99)
	if want := []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("Top with r>len = %v, want %v", got, want)
	}
}

func TestTopHonoursCandidates(t *testing.T) {
	ix := testIndex()
	// Restricted to {FR, WSJ}, "alpha" cannot pick AP even though AP would
	// win an unrestricted ranking.
	got := ix.Top([]string{"alpha"}, []int{1, 2}, 1)
	if len(got) != 1 || got[0] == 0 {
		t.Fatalf("Top over candidates {1,2} = %v, must exclude 0", got)
	}
	if got := ix.Top([]string{"alpha"}, []int{}, 1); got != nil {
		t.Errorf("Top over empty candidates = %v, want nil", got)
	}
}

func TestScoreDeterministicUnderTermOrder(t *testing.T) {
	ix := testIndex()
	a := ix.Score([]string{"alpha", "federal", "common", "wallstreet"})
	b := ix.Score([]string{"wallstreet", "common", "federal", "alpha", "alpha"})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Score depends on term order/duplication: %v vs %v", a, b)
	}
}

func TestScoreUnknownTermsFloor(t *testing.T) {
	ix := testIndex()
	scores := ix.Score([]string{"zebra", "quux"})
	for i, s := range scores {
		if s != belief {
			t.Errorf("collection %d scored %v for unknown-only query, want belief floor %v", i, s, belief)
		}
	}
}

func TestTiesBreakByIndex(t *testing.T) {
	// Two identical collections tie exactly; the lower index must win.
	df := map[string]uint32{"term": 10}
	ix := New([]Collection{
		{Name: "B", Docs: 10, DF: df},
		{Name: "A", Docs: 10, DF: df},
	})
	if got := ix.Top([]string{"term"}, nil, 1); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("tie broke to %v, want [0]", got)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := New(nil)
	if got := ix.Top([]string{"alpha"}, nil, 3); got != nil {
		t.Fatalf("empty index selected %v", got)
	}
	if n := ix.Len(); n != 0 {
		t.Fatalf("empty index Len = %d", n)
	}
}

func TestRareTermOutweighsCommonTerm(t *testing.T) {
	ix := testIndex()
	// "federal" appears in 2 collections, "common" in all 3: on a
	// {common, federal} query the federal-heavy collection must still win,
	// because the scaled idf discounts the undiscriminating term.
	got := ix.Top([]string{"common", "federal"}, nil, 1)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Top(common federal) = %v, want [1] (FR)", got)
	}
}
