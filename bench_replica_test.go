package teraphim

// BenchmarkReplicaThroughput measures what replica sets buy under failure
// and under tail latency:
//
//   - kill=0 vs kill=1: sustained queries/sec over a 2-replica fleet, with
//     one replica of every librarian killed halfway through the timed run.
//     Retried exchanges land on the surviving sibling, so throughput should
//     sag, not collapse — and zero queries may error or degrade.
//   - hedge=off vs hedge=on: per-query p50/p99 with one replica of every
//     librarian shaped 20ms slow. Unhedged, the tail is the slow replica's;
//     hedged (Options.HedgeAfter = 0.9), a second replica is raced as soon
//     as an exchange outlives the librarian's p90 and the tail collapses to
//     roughly one extra fast round trip.
//
// Run
//
//	go test -bench=ReplicaThroughput -run='^$'
//
// `make bench-replica` sets REPLICA_BENCH_RECORD and regenerates
// BENCH_replica.json (the smoke run in `make verify` leaves the recorded
// numbers alone).

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/simnet"
	"teraphim/internal/trecsynth"
)

// replicaBenchFleet is one freshly built 2-replica deployment: every
// librarian is served by endpoints name#0 and name#1 (one shared Librarian
// instance behind both — replicas of a subcollection without duplicating
// the index), wired through a chaos dialer so the benchmark can kill or
// slow individual replicas.
type replicaBenchFleet struct {
	pool    *Pool
	chaos   *ChaosDialer
	names   []string
	queries []string
}

func newReplicaBenchFleet(b *testing.B, clients int) *replicaBenchFleet {
	b.Helper()
	corpus, err := trecsynth.Generate(trecsynth.SkewedConfig(4, 150))
	if err != nil {
		b.Fatal(err)
	}
	f := &replicaBenchFleet{}
	dialer := librarian.NewInProcessDialer(nil, simnet.LinkConfig{})
	replicas := make(map[string][]string)
	link := LinkConfig{Latency: 300 * time.Microsecond}
	for _, sub := range corpus.Subcollections {
		lib, err := librarian.Build(sub.Name, sub.Docs, librarian.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			ep := fmt.Sprintf("%s#%d", sub.Name, i)
			dialer.AddEndpoint(ep, lib, link)
			replicas[sub.Name] = append(replicas[sub.Name], ep)
		}
		f.names = append(f.names, sub.Name)
	}
	f.chaos = NewChaosDialer(dialer)
	pool, err := ConnectPool(f.chaos, f.names, ReceptionistConfig{
		MaxConnsPerLibrarian: clients,
		Replicas:             replicas,
	})
	if err != nil {
		b.Fatal(err)
	}
	f.pool = pool
	b.Cleanup(func() { pool.Close() })
	for _, q := range corpus.QueriesOf(trecsynth.ShortQuery) {
		f.queries = append(f.queries, q.Text)
	}
	return f
}

// replicaBenchRow is one scenario of BENCH_replica.json.
type replicaBenchRow struct {
	Scenario   string  `json:"scenario"`
	Replicas   int     `json:"replicas"`
	Killed     int     `json:"killed_mid_run"`
	HedgeAfter float64 `json:"hedge_after"`
	Queries    int     `json:"queries"`
	Seconds    float64 `json:"seconds"`
	QueriesSec float64 `json:"queries_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	Hedges     uint64  `json:"hedges_launched"`
	HedgeWins  uint64  `json:"hedges_won"`
}

func durQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runReplicaBench drives clients concurrent query loops for b.N queries,
// invoking disrupt once after half the queries have been dispatched, and
// returns the sorted per-query latencies. Any query error fails the
// benchmark: replication's whole promise is that the scenarios stay green.
func runReplicaBench(b *testing.B, f *replicaBenchFleet, clients int, opts Options, disrupt func()) []time.Duration {
	b.Helper()
	work := make(chan int)
	errs := make(chan error, clients)
	lats := make(chan []time.Duration, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := f.pool.Session()
			var mine []time.Duration
			for i := range work {
				q := f.queries[i%len(f.queries)]
				qStart := time.Now()
				res, err := sess.Query(ModeCN, q, 10, opts)
				if err != nil {
					errs <- fmt.Errorf("query %d (%q): %w", i, q, err)
					return
				}
				if res.Trace.Degraded {
					errs <- fmt.Errorf("query %d (%q): degraded with a live sibling replica", i, q)
					return
				}
				mine = append(mine, time.Since(qStart))
			}
			lats <- mine
			errs <- nil
		}()
	}
	half := b.N / 2
	for i := 0; i < b.N; i++ {
		if i == half && disrupt != nil {
			disrupt()
		}
		work <- i
	}
	close(work)
	wg.Wait()
	close(errs)
	close(lats)
	for err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	var all []time.Duration
	for mine := range lats {
		all = append(all, mine...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

func BenchmarkReplicaThroughput(b *testing.B) {
	const clients = 4
	opts := Options{Retries: 2, Backoff: time.Millisecond}
	rows := make(map[string]replicaBenchRow)

	scenarios := []struct {
		name    string
		killed  int
		hedge   float64
		prepare func(f *replicaBenchFleet) // before the timed run
		disrupt func(f *replicaBenchFleet) // at the halfway mark
	}{
		{name: "replicas=2/kill=0"},
		{
			name: "replicas=2/kill=1", killed: 1,
			disrupt: func(f *replicaBenchFleet) {
				for _, name := range f.names {
					f.chaos.Kill(name + "#1")
				}
			},
		},
		{
			name: "slow-replica/hedge=off",
			prepare: func(f *replicaBenchFleet) {
				for _, name := range f.names {
					f.chaos.SetDelay(name+"#0", 20*time.Millisecond)
				}
			},
		},
		{
			name: "slow-replica/hedge=0.9", hedge: 0.9,
			prepare: func(f *replicaBenchFleet) {
				for _, name := range f.names {
					f.chaos.SetDelay(name+"#0", 20*time.Millisecond)
				}
			},
		},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			f := newReplicaBenchFleet(b, clients)
			scOpts := opts
			scOpts.HedgeAfter = sc.hedge
			// Untimed warmup on the healthy fleet: fills the latency trackers
			// past the hedge sample gate, so a hedged scenario hedges from
			// the first timed query instead of partway in.
			for i := 0; i < 8; i++ {
				for _, q := range f.queries[:4] {
					if _, err := f.pool.Query(ModeCN, q, 10, Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
			if sc.prepare != nil {
				sc.prepare(f)
			}
			var disrupt func()
			if sc.disrupt != nil {
				disrupt = func() { sc.disrupt(f) }
			}
			hedges0 := f.pool.Metrics().HedgesLaunched()
			wins0 := f.pool.Metrics().HedgesWon()
			b.ResetTimer()
			lats := runReplicaBench(b, f, clients, scOpts, disrupt)
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			var qps float64
			if secs > 0 {
				qps = float64(b.N) / secs
			}
			p50 := durQuantile(lats, 0.50)
			p99 := durQuantile(lats, 0.99)
			b.ReportMetric(qps, "queries/sec")
			b.ReportMetric(float64(p50)/1e6, "p50-ms")
			b.ReportMetric(float64(p99)/1e6, "p99-ms")
			rows[sc.name] = replicaBenchRow{
				Scenario: sc.name, Replicas: 2, Killed: sc.killed,
				HedgeAfter: sc.hedge, Queries: b.N, Seconds: secs,
				QueriesSec: qps,
				P50Ms:      float64(p50) / 1e6,
				P99Ms:      float64(p99) / 1e6,
				Hedges:     f.pool.Metrics().HedgesLaunched() - hedges0,
				HedgeWins:  f.pool.Metrics().HedgesWon() - wins0,
			}
		})
	}
	if os.Getenv("REPLICA_BENCH_RECORD") == "" || len(rows) == 0 {
		return
	}
	out := make([]replicaBenchRow, 0, len(rows))
	for _, sc := range scenarios {
		if r, ok := rows[sc.name]; ok {
			out = append(out, r)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_replica.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_replica.json (%d rows)", len(out))
}
