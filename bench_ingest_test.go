package teraphim

// BenchmarkIngestThroughput measures what segment-based streaming ingestion
// buys over the seed's rebuild-and-swap update path, and what it costs the
// query side:
//
//   - update=rebuild: the baseline — every 50-document arrival triggers
//     Update over the whole collection (re-tokenize, re-index, re-compress
//     ~2000 docs), the only way the pre-segment API could grow a live
//     collection without renumbering.
//   - update=ingest: the same arrivals through Ingest/Flush — each batch is
//     built into its own segment in O(batch) work, with the size-tiered
//     policy merging in the background.
//   - queries=idle: CN query throughput against the final collection (seed
//     plus everything streamed) with no ingestion running — the reference
//     for interference.
//   - queries=during-ingest: the same query load starting from the seed
//     collection while the remaining documents stream in — how much a
//     growing manifest and background merges steal from serving.
//
// Run
//
//	go test -bench=IngestThroughput -run='^$'
//
// `make bench-ingest` sets INGEST_BENCH_RECORD and regenerates
// BENCH_ingest.json (the smoke run in `make verify` leaves the recorded
// numbers alone).

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"
)

const (
	ingestBenchSeedDocs  = 2000
	ingestBenchBatchDocs = 50
	// The during-ingest cell streams a fixed total, paced to one batch per
	// interval (2k docs/sec offered, well past what rebuild-and-swap
	// sustains) so it measures interference between serving and background
	// building over a bounded collection, not CPU starvation by an
	// unbounded producer.
	ingestBenchStreamDocs = 2000
	ingestBenchPace       = 25 * time.Millisecond
)

var ingestBenchVocab = []string{
	"harbor", "tide", "anchor", "compass", "lantern", "storm", "reef",
	"whale", "gull", "mast", "salt", "chart", "drift", "squall", "keel",
	"beacon", "current", "fathom", "horizon", "jetty",
}

func ingestBenchDocs(rng *rand.Rand, n int) []Document {
	docs := make([]Document, n)
	for i := range docs {
		var sb strings.Builder
		for w := 0; w < 12+rng.Intn(20); w++ {
			sb.WriteString(ingestBenchVocab[rng.Intn(len(ingestBenchVocab))])
			sb.WriteByte(' ')
		}
		docs[i] = Document{Title: fmt.Sprintf("d%06d", i), Text: strings.TrimSpace(sb.String())}
	}
	return docs
}

func newIngestBenchLibrarian(b *testing.B, nDocs int, cfg IngestConfig) *UpdatableLibrarian {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	up, err := NewUpdatableLibrarian("LIVE", ingestBenchDocs(rng, nDocs), BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if err := up.ConfigureIngest(cfg); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { up.Close() })
	return up
}

func newIngestBenchPool(b *testing.B, up *UpdatableLibrarian) *Pool {
	b.Helper()
	dialer := NewInProcessDialer(nil, LinkConfig{})
	dialer.AddEndpoint("LIVE", up, LinkConfig{})
	pool, err := ConnectPool(dialer, []string{"LIVE"}, ReceptionistConfig{MaxConnsPerLibrarian: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pool.Close() })
	return pool
}

// ingestBenchRow is one cell of BENCH_ingest.json.
type ingestBenchRow struct {
	Mode          string  `json:"mode"`
	SeedDocs      int     `json:"seed_docs"`
	BatchDocs     int     `json:"batch_docs"`
	Iterations    int     `json:"iterations"`
	Seconds       float64 `json:"seconds"`
	DocsPerSec    float64 `json:"docs_per_sec,omitempty"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
	SegmentsLive  int     `json:"segments_live,omitempty"`
	Merges        uint64  `json:"merges,omitempty"`
}

func BenchmarkIngestThroughput(b *testing.B) {
	rows := map[string]ingestBenchRow{}
	order := []string{"update=rebuild", "update=ingest", "queries=idle", "queries=during-ingest"}

	b.Run("update=rebuild", func(b *testing.B) {
		up := newIngestBenchLibrarian(b, ingestBenchSeedDocs, IngestConfig{})
		rng := rand.New(rand.NewSource(11))
		corpus := ingestBenchDocs(rand.New(rand.NewSource(7)), ingestBenchSeedDocs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			corpus = append(corpus, ingestBenchDocs(rng, ingestBenchBatchDocs)...)
			if err := up.Update(corpus); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		secs := b.Elapsed().Seconds()
		docsSec := float64(b.N*ingestBenchBatchDocs) / secs
		b.ReportMetric(docsSec, "docs/sec")
		rows["update=rebuild"] = ingestBenchRow{
			Mode: "rebuild", SeedDocs: ingestBenchSeedDocs, BatchDocs: ingestBenchBatchDocs,
			Iterations: b.N, Seconds: secs, DocsPerSec: docsSec,
		}
	})

	b.Run("update=ingest", func(b *testing.B) {
		up := newIngestBenchLibrarian(b, ingestBenchSeedDocs, IngestConfig{})
		ctx := context.Background()
		rng := rand.New(rand.NewSource(11))
		batches := make([][]Document, b.N)
		for i := range batches {
			batches[i] = ingestBenchDocs(rng, ingestBenchBatchDocs)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := up.Ingest(ctx, batches[i]); err != nil {
				b.Fatal(err)
			}
		}
		// Visibility is part of the contract: time includes the final Flush.
		if err := up.Flush(ctx); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		secs := b.Elapsed().Seconds()
		docsSec := float64(b.N*ingestBenchBatchDocs) / secs
		st := up.SegmentStats()
		b.ReportMetric(docsSec, "docs/sec")
		b.ReportMetric(float64(len(st.Segments)), "segments")
		rows["update=ingest"] = ingestBenchRow{
			Mode: "ingest", SeedDocs: ingestBenchSeedDocs, BatchDocs: ingestBenchBatchDocs,
			Iterations: b.N, Seconds: secs, DocsPerSec: docsSec,
			SegmentsLive: len(st.Segments), Merges: st.Merges,
		}
	})

	b.Run("queries=idle", func(b *testing.B) {
		up := newIngestBenchLibrarian(b, ingestBenchSeedDocs+ingestBenchStreamDocs, IngestConfig{})
		pool := newIngestBenchPool(b, up)
		sess := pool.Session()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := ingestBenchVocab[i%len(ingestBenchVocab)] + " " + ingestBenchVocab[(i*7)%len(ingestBenchVocab)]
			if _, err := sess.Query(ModeCN, q, 10, Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		secs := b.Elapsed().Seconds()
		qps := float64(b.N) / secs
		b.ReportMetric(qps, "queries/sec")
		rows["queries=idle"] = ingestBenchRow{
			Mode: "queries-idle", SeedDocs: ingestBenchSeedDocs, BatchDocs: ingestBenchBatchDocs,
			Iterations: b.N, Seconds: secs, QueriesPerSec: qps,
		}
	})

	b.Run("queries=during-ingest", func(b *testing.B) {
		up := newIngestBenchLibrarian(b, ingestBenchSeedDocs, IngestConfig{})
		pool := newIngestBenchPool(b, up)
		sess := pool.Session()
		ctx := context.Background()
		producerDone := make(chan error, 1)
		go func() {
			rng := rand.New(rand.NewSource(11))
			for sent := 0; sent < ingestBenchStreamDocs; sent += ingestBenchBatchDocs {
				if err := up.Ingest(ctx, ingestBenchDocs(rng, ingestBenchBatchDocs)); err != nil {
					producerDone <- err
					return
				}
				time.Sleep(ingestBenchPace)
			}
			producerDone <- up.Flush(ctx)
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := ingestBenchVocab[i%len(ingestBenchVocab)] + " " + ingestBenchVocab[(i*7)%len(ingestBenchVocab)]
			if _, err := sess.Query(ModeCN, q, 10, Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := <-producerDone; err != nil {
			b.Fatal(err)
		}
		secs := b.Elapsed().Seconds()
		qps := float64(b.N) / secs
		st := up.SegmentStats()
		b.ReportMetric(qps, "queries/sec")
		b.ReportMetric(float64(len(st.Segments)), "segments")
		rows["queries=during-ingest"] = ingestBenchRow{
			Mode: "queries-during-ingest", SeedDocs: ingestBenchSeedDocs, BatchDocs: ingestBenchBatchDocs,
			Iterations: b.N, Seconds: secs, QueriesPerSec: qps,
			SegmentsLive: len(st.Segments), Merges: st.Merges,
		}
	})

	if os.Getenv("INGEST_BENCH_RECORD") == "" || len(rows) == 0 {
		return
	}
	out := make([]ingestBenchRow, 0, len(rows))
	for _, name := range order {
		if r, ok := rows[name]; ok {
			out = append(out, r)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ingest.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_ingest.json (%d rows)", len(out))
}
