package teraphim

// BenchmarkCacheThroughput measures what the receptionist result cache buys
// on a repeated-query workload: the same client fan-out as
// BenchmarkPoolThroughput (CV over latency-shaped links), run cache-off and
// cache-on. With the cache every repeat of the 24-query rotation is answered
// from memory — no librarian round trips — so throughput decouples from the
// simulated network entirely. Run
//
//	go test -bench=CacheThroughput -run='^$'
//
// Each sub-benchmark reports queries/sec and cache hits; `make bench-cache`
// sets CACHE_BENCH_RECORD and regenerates BENCH_cache.json (the smoke run in
// `make verify` leaves the recorded numbers alone).

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
)

type cacheBenchRow struct {
	Cache      bool    `json:"cache"`
	Clients    int     `json:"clients"`
	Queries    int     `json:"queries"`
	CacheHits  uint64  `json:"cache_hits"`
	Seconds    float64 `json:"seconds"`
	QueriesSec float64 `json:"queries_per_sec"`
}

func BenchmarkCacheThroughput(b *testing.B) {
	poolBenchSetup(b)
	specs := []struct {
		label string
		cache *CacheConfig
	}{
		{"cache=off", nil},
		{"cache=on", &CacheConfig{}},
	}
	rows := make(map[string]cacheBenchRow)
	for _, spec := range specs {
		for _, clients := range []int{1, 4, 8} {
			name := fmt.Sprintf("%s/clients=%d", spec.label, clients)
			b.Run(name, func(b *testing.B) {
				pool, err := ConnectPool(poolBenchDialer, poolBenchNames,
					ReceptionistConfig{MaxConnsPerLibrarian: clients, Cache: spec.cache})
				if err != nil {
					b.Fatal(err)
				}
				defer pool.Close()
				if _, err := pool.SetupVocabulary(); err != nil {
					b.Fatal(err)
				}
				work := make(chan int)
				errs := make(chan error, clients)
				var wg sync.WaitGroup
				b.ResetTimer()
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						sess := pool.Session()
						for i := range work {
							q := poolBenchQueries[i%len(poolBenchQueries)]
							if _, err := sess.Query(ModeCV, q, 20, Options{}); err != nil {
								errs <- err
								return
							}
						}
						errs <- nil
					}()
				}
				for i := 0; i < b.N; i++ {
					work <- i
				}
				close(work)
				wg.Wait()
				b.StopTimer()
				close(errs)
				for err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				var hits uint64
				if stats, ok := pool.CacheStats(); ok {
					hits = stats.Hits
				}
				secs := b.Elapsed().Seconds()
				var qps float64
				if secs > 0 {
					qps = float64(b.N) / secs
				}
				b.ReportMetric(qps, "queries/sec")
				rows[name] = cacheBenchRow{
					Cache: spec.cache != nil, Clients: clients,
					Queries: b.N, CacheHits: hits, Seconds: secs, QueriesSec: qps,
				}
			})
		}
	}
	if os.Getenv("CACHE_BENCH_RECORD") == "" || len(rows) == 0 {
		return
	}
	out := make([]cacheBenchRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cache != out[j].Cache {
			return !out[i].Cache
		}
		return out[i].Clients < out[j].Clients
	})
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_cache.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_cache.json (%d rows)", len(out))
}
