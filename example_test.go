package teraphim_test

import (
	"fmt"
	"log"

	"teraphim"
)

// The library's one-minute tour: build a librarian over a few documents and
// run a ranked query.
func Example() {
	docs := []teraphim.Document{
		{Title: "mono", Text: "Text collections have traditionally been managed as a monolithic whole."},
		{Title: "dist", Text: "Distributed retrieval spreads a collection over several hosts."},
		{Title: "rank", Text: "Ranked queries order documents by similarity to the query."},
	}
	lib, err := teraphim.BuildLibrarian("demo", docs)
	if err != nil {
		log.Fatal(err)
	}
	ranking, err := lib.Engine().Rank("distributed collection hosts", 2, nil)
	results := ranking.Results
	if err != nil {
		log.Fatal(err)
	}
	doc, err := lib.Store().Fetch(results[0].Doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(doc.Title)
	// Output: dist
}

// Federating several librarians behind a receptionist with the Central
// Vocabulary methodology: scores are identical to a monolithic system's.
func ExampleReceptionist() {
	analyzer := teraphim.NewAnalyzer()
	libA, err := teraphim.BuildLibrarianWith("A", []teraphim.Document{
		{Title: "a0", Text: "solar energy from photovoltaic panels"},
	}, teraphim.BuildOptions{Analyzer: analyzer})
	if err != nil {
		log.Fatal(err)
	}
	libB, err := teraphim.BuildLibrarianWith("B", []teraphim.Document{
		{Title: "b0", Text: "wind energy from coastal turbines"},
	}, teraphim.BuildOptions{Analyzer: analyzer})
	if err != nil {
		log.Fatal(err)
	}
	dialer := teraphim.NewInProcessDialer([]*teraphim.Librarian{libA, libB}, teraphim.LinkConfig{})
	recep, err := teraphim.ConnectReceptionist(dialer, []string{"A", "B"}, teraphim.ReceptionistConfig{Analyzer: analyzer})
	if err != nil {
		log.Fatal(err)
	}
	defer recep.Close()
	if _, err := recep.SetupVocabulary(); err != nil {
		log.Fatal(err)
	}
	res, err := recep.Query(teraphim.ModeCV, "wind energy", 2, teraphim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Answers[0].Key())
	// Output: B:0
}

// Distributed Boolean evaluation needs no global statistics: the answer is
// the union of per-librarian result sets.
func ExampleReceptionist_boolean() {
	analyzer := teraphim.NewAnalyzer(teraphim.WithoutStopwords(), teraphim.WithoutStemming())
	libA, err := teraphim.BuildLibrarianWith("A", []teraphim.Document{
		{Title: "a0", Text: "apples and oranges"},
		{Title: "a1", Text: "apples only"},
	}, teraphim.BuildOptions{Analyzer: analyzer})
	if err != nil {
		log.Fatal(err)
	}
	libB, err := teraphim.BuildLibrarianWith("B", []teraphim.Document{
		{Title: "b0", Text: "oranges only"},
	}, teraphim.BuildOptions{Analyzer: analyzer})
	if err != nil {
		log.Fatal(err)
	}
	dialer := teraphim.NewInProcessDialer([]*teraphim.Librarian{libA, libB}, teraphim.LinkConfig{})
	recep, err := teraphim.ConnectReceptionist(dialer, []string{"A", "B"}, teraphim.ReceptionistConfig{Analyzer: analyzer})
	if err != nil {
		log.Fatal(err)
	}
	defer recep.Close()
	res, err := recep.Boolean("apples OR oranges")
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Answers {
		fmt.Println(a.Key())
	}
	// Output:
	// A:0
	// A:1
	// B:0
}
