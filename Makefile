# Development targets. `make verify` is the pre-merge wall: static checks,
# the full test suite under the race detector, and short fuzz smokes of the
# wire protocol and postings codec.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fuzz-smoke bench bench-smoke bench-pool bench-cache bench-cache-smoke bench-select bench-select-smoke bench-replica bench-replica-smoke bench-wire bench-wire-smoke bench-ingest bench-ingest-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz runs: long enough to catch regressions in the decoder and
# codec invariants, short enough for every verify run. -run='^$$' skips
# the unit tests, which `race` already covered.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadMessage -fuzztime=$(FUZZTIME) ./internal/protocol
	$(GO) test -run='^$$' -fuzz=FuzzReadTaggedMessage -fuzztime=$(FUZZTIME) ./internal/protocol
	$(GO) test -run='^$$' -fuzz=FuzzMessageRoundTrip -fuzztime=$(FUZZTIME) ./internal/protocol
	$(GO) test -run='^$$' -fuzz=FuzzBatchRoundTrip -fuzztime=$(FUZZTIME) ./internal/protocol
	$(GO) test -run='^$$' -fuzz=FuzzPostingsRoundTrip -fuzztime=$(FUZZTIME) ./internal/codec
	$(GO) test -run='^$$' -fuzz=FuzzPostingsDecodeCorrupt -fuzztime=$(FUZZTIME) ./internal/codec

# Regenerate BENCH_pool.json (concurrent throughput over the shared pool).
bench-pool:
	$(GO) test -run='^$$' -bench=PoolThroughput .

# Regenerate BENCH_cache.json: repeated-query throughput with the result
# cache off vs on (the writer is gated on CACHE_BENCH_RECORD).
bench-cache:
	CACHE_BENCH_RECORD=1 $(GO) test -run='^$$' -bench=CacheThroughput .

# Short form for verify: exercises every cache sweep cell without touching
# the recorded BENCH_cache.json numbers.
bench-cache-smoke:
	$(GO) test -run='^$$' -bench=CacheThroughput -benchtime=0.05s .

# Regenerate BENCH_select.json: top-R collection selection swept over fleet
# size and R, reporting throughput, mean fan-out and overlap@10 against full
# fan-out (the writer is gated on SELECT_BENCH_RECORD).
bench-select:
	SELECT_BENCH_RECORD=1 $(GO) test -run='^$$' -bench=SelectThroughput .

# Short form for verify: exercises every selection sweep cell without
# touching the recorded BENCH_select.json numbers.
bench-select-smoke:
	$(GO) test -run='^$$' -bench=SelectThroughput -benchtime=0.05s .

# Regenerate BENCH_replica.json: replica-set throughput with a replica
# killed mid-run, and hedged vs unhedged tail latency against a slow replica
# (the writer is gated on REPLICA_BENCH_RECORD).
bench-replica:
	REPLICA_BENCH_RECORD=1 $(GO) test -run='^$$' -bench=ReplicaThroughput .

# Short form for verify: exercises every replica scenario — kill mid-run,
# hedge race — without touching the recorded BENCH_replica.json numbers.
bench-replica-smoke:
	$(GO) test -run='^$$' -bench=ReplicaThroughput -benchtime=30x .

# Regenerate BENCH_wire.json: seed vs pipelined vs batched framing on a
# shaped WAN link, reporting queries/sec, round-trips/query, bytes/query
# and overlap@10 against the seed wire (the writer is gated on
# WIRE_BENCH_RECORD).
bench-wire:
	WIRE_BENCH_RECORD=1 $(GO) test -run='^$$' -bench=WireThroughput .

# Short form for verify: exercises every wire cell — negotiation, demux,
# batching — without touching the recorded BENCH_wire.json numbers.
bench-wire-smoke:
	$(GO) test -run='^$$' -bench=WireThroughput -benchtime=20x .

# Regenerate BENCH_ingest.json: streaming-ingest docs/sec vs the
# rebuild-and-swap baseline, and query throughput idle vs during continuous
# ingestion (the writer is gated on INGEST_BENCH_RECORD).
bench-ingest:
	INGEST_BENCH_RECORD=1 $(GO) test -run='^$$' -bench=IngestThroughput .

# Short form for verify: exercises every ingest cell — rebuild, streaming,
# query interference — without touching the recorded BENCH_ingest.json
# numbers.
bench-ingest-smoke:
	$(GO) test -run='^$$' -bench=IngestThroughput -benchtime=5x .

# Full search-kernel sweep with allocation reporting; regenerates the
# "current" section of BENCH_search.json (the "baseline" section records
# the pre-kernel evaluator and is preserved).
bench:
	KERNEL_BENCH_SECTION=current $(GO) test -run='^$$' -bench=SearchKernel -benchmem .

# Short form for verify: exercises every sweep cell without rewriting
# BENCH_search.json (the writer is gated on KERNEL_BENCH_SECTION).
bench-smoke:
	$(GO) test -run='^$$' -bench=SearchKernel -benchmem -benchtime=0.05s .

verify: vet build race fuzz-smoke bench-smoke bench-cache-smoke bench-select-smoke bench-replica-smoke bench-wire-smoke bench-ingest-smoke
	@echo "verify: OK"
