package teraphim

// Integration tests driving the public API end to end, the way a
// downstream user would.

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
)

func apiDocs() []Document {
	return []Document{
		{Title: "d0", Text: "Distributed information retrieval systems can be fast and effective."},
		{Title: "d1", Text: "A librarian maintains the index for its own subcollection."},
		{Title: "d2", Text: "The receptionist merges the rankings returned by each librarian."},
		{Title: "d3", Text: "Compression keeps both the index and the documents small."},
	}
}

func TestQuickstartFlow(t *testing.T) {
	lib, err := BuildLibrarian("demo", apiDocs())
	if err != nil {
		t.Fatal(err)
	}
	ranking, err := lib.Engine().Rank("merging librarian rankings", 3, nil)
	results := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || results[0].Doc != 2 {
		t.Fatalf("quickstart ranking = %v, want doc 2 first", results)
	}
	doc, err := lib.Store().Fetch(results[0].Doc)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Title != "d2" {
		t.Fatalf("fetched %q", doc.Title)
	}
}

func TestDistributedFlowOverPublicAPI(t *testing.T) {
	analyzer := NewAnalyzer()
	var libs []*Librarian
	for _, part := range []struct {
		name string
		docs []Document
	}{
		{"A", apiDocs()[:2]},
		{"B", apiDocs()[2:]},
	} {
		lib, err := BuildLibrarianWith(part.name, part.docs, BuildOptions{Analyzer: analyzer})
		if err != nil {
			t.Fatal(err)
		}
		libs = append(libs, lib)
	}
	dialer := NewInProcessDialer(libs, LinkConfig{})
	recep, err := ConnectReceptionist(dialer, []string{"A", "B"}, ReceptionistConfig{Analyzer: analyzer})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		recep.Close()
		dialer.Wait()
	}()
	if _, err := recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	res, err := recep.Query(ModeCV, "librarian rankings", 4, Options{Fetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers over public API")
	}
	if res.Answers[0].Text == "" {
		t.Fatal("fetch did not populate text")
	}
}

func TestSaveLoadCollection(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "col")
	lib, err := BuildLibrarian("persist", apiDocs())
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCollection(dir, lib, true, true); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCollection(dir)
	if err != nil {
		t.Fatal(err)
	}
	ranking, err := lib.Engine().Rank("distributed retrieval", 4, nil)
	want := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	ranking, err = loaded.Engine().Rank("distributed retrieval", 4, nil)
	got := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("reloaded collection returns %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("result %d differs after reload: %+v vs %+v", i, got[i], want[i])
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "index.tpix")); err != nil {
		t.Fatal("index file missing")
	}
}

func TestTCPFlowOverPublicAPI(t *testing.T) {
	lib, err := BuildLibrarian("tcp", apiDocs())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeLibrarian(lib, ln)
	defer srv.Close()

	dialer := TCPDialer{"tcp": srv.Addr().String()}
	recep, err := ConnectReceptionist(dialer, []string{"tcp"}, ReceptionistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer recep.Close()
	res, err := recep.Query(ModeCN, "compression index", 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers over TCP")
	}
}

func TestCorpusGeneration(t *testing.T) {
	small := DefaultCorpusConfig()
	small.Subs = small.Subs[:2]
	small.Subs[0].NumDocs = 50
	small.Subs[1].NumDocs = 40
	small.VocabSize = 2000
	small.NumTopics = 8
	small.NumLongQueries = 2
	small.NumShortQueries = 2
	corpus, err := GenerateCorpus(small)
	if err != nil {
		t.Fatal(err)
	}
	docs, keys := corpus.AllDocs()
	if len(docs) != 90 || len(keys) != 90 {
		t.Fatalf("corpus has %d docs", len(docs))
	}
}

func TestGroupedIndexOverPublicAPI(t *testing.T) {
	analyzer := NewAnalyzer(WithoutStopwords(), WithoutStemming())
	var docTerms [][]string
	for _, d := range apiDocs() {
		docTerms = append(docTerms, analyzer.Terms(nil, d.Text))
	}
	gi, err := BuildGroupedIndex(docTerms, 2, analyzer)
	if err != nil {
		t.Fatal(err)
	}
	if gi.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", gi.NumGroups())
	}
}

func TestMonoServerOverPublicAPI(t *testing.T) {
	analyzer := NewAnalyzer()
	st, err := BuildStore(apiDocs())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := BuildLibrarianWith("all", apiDocs(), BuildOptions{Analyzer: analyzer})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewMonoServer(lib.Engine(), st, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ms.Query("distributed retrieval", 3, Options{Fetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 || res.Answers[0].Text == "" {
		t.Fatalf("MS answers: %+v", res.Answers)
	}
}

func TestStreamingIngestOverPublicAPI(t *testing.T) {
	up, err := NewUpdatableLibrarian("LIVE", apiDocs()[:2], BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	if err := up.ConfigureIngest(IngestConfig{MinSegmentDocs: 1, MergeFanIn: 2}); err != nil {
		t.Fatal(err)
	}

	dialer := NewInProcessDialer(nil, LinkConfig{})
	dialer.AddEndpoint("LIVE", up, LinkConfig{})
	pool, err := ConnectPool(dialer, []string{"LIVE"}, ReceptionistConfig{Cache: &CacheConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	up.OnUpdate(pool.InvalidateCache)

	ctx := context.Background()
	sess := pool.Session()
	if _, err := sess.Query(ModeCN, "compression keeps the index small", 4, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := up.Ingest(ctx, apiDocs()[2:]); err != nil {
		t.Fatal(err)
	}
	if err := up.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Query(ModeCN, "compression keeps the index small", 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.CacheHit {
		t.Fatal("cached result survived an ingest epoch")
	}
	found := false
	for _, a := range res.Answers {
		if a.LocalDoc == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("streamed doc missing from answers: %+v", res.Answers)
	}

	st := up.SegmentStats()
	if st.TotalDocs != 4 || st.DocsIndexed != 2 {
		t.Fatalf("SegmentStats = %+v", st)
	}
	if err := up.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if n := len(up.SegmentStats().Segments); n != 1 {
		t.Fatalf("segments after compact = %d", n)
	}

	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	if err := up.Ingest(ctx, apiDocs()[:1]); !errors.Is(err, ErrLibrarianClosed) {
		t.Fatalf("ingest after close = %v, want ErrLibrarianClosed", err)
	}
}
