package teraphim

// BenchmarkPoolThroughput measures concurrent query serving over one shared
// federation: N client goroutines fan out over a Pool whose vocabulary (and,
// for CI, central index) was set up once. Run
//
//	go test -bench=PoolThroughput -run='^$'
//
// Besides the usual ns/op, each sub-benchmark reports queries/sec, and the
// sweep writes a machine-readable summary to BENCH_pool.json (see
// EXPERIMENTS.md for a recorded table).

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/trecsynth"
)

var (
	poolBenchOnce    sync.Once
	poolBenchDialer  *InProcessDialer
	poolBenchNames   []string
	poolBenchQueries []string
	poolBenchErr     error
)

// poolBenchSetup builds three librarians from a reduced synthetic corpus and
// wires them behind an in-process dialer, once for the whole sweep.
func poolBenchSetup(b *testing.B) {
	b.Helper()
	poolBenchOnce.Do(func() {
		cfg := trecsynth.DefaultConfig()
		cfg.Subs = []trecsynth.SubSpec{
			{Name: "AP", NumDocs: 250},
			{Name: "FR", NumDocs: 200},
			{Name: "WSJ", NumDocs: 250},
		}
		cfg.VocabSize = 3000
		cfg.NumTopics = 20
		cfg.NumLongQueries = 8
		cfg.NumShortQueries = 24
		corpus, err := trecsynth.Generate(cfg)
		if err != nil {
			poolBenchErr = err
			return
		}
		var libs []*Librarian
		for _, sub := range corpus.Subcollections {
			lib, err := librarian.Build(sub.Name, sub.Docs, librarian.BuildOptions{})
			if err != nil {
				poolBenchErr = err
				return
			}
			libs = append(libs, lib)
			poolBenchNames = append(poolBenchNames, sub.Name)
		}
		// Shape the links with a sub-millisecond one-way delay so the
		// workload is network-bound, like the paper's LAN/WAN settings:
		// throughput then scales with clients by overlapping waits,
		// which a CPU-bound in-process loop could not show on one core.
		poolBenchDialer = NewInProcessDialer(libs, LinkConfig{Latency: 500 * time.Microsecond})
		for _, q := range corpus.QueriesOf(trecsynth.ShortQuery) {
			poolBenchQueries = append(poolBenchQueries, q.Text)
		}
	})
	if poolBenchErr != nil {
		b.Fatal(poolBenchErr)
	}
}

// poolBenchRow is one sweep cell of BENCH_pool.json.
type poolBenchRow struct {
	Mode       string  `json:"mode"`
	Clients    int     `json:"clients"`
	Queries    int     `json:"queries"`
	Seconds    float64 `json:"seconds"`
	QueriesSec float64 `json:"queries_per_sec"`
}

func BenchmarkPoolThroughput(b *testing.B) {
	poolBenchSetup(b)
	specs := []struct {
		label string
		mode  Mode
	}{
		{"CN", ModeCN},
		{"CV", ModeCV},
		{"CI", ModeCI},
	}
	// b.Run invokes each sub-benchmark several times with growing b.N;
	// keying by name keeps only the final (longest, most stable) run.
	rows := make(map[string]poolBenchRow)
	for _, spec := range specs {
		for _, clients := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("%s/clients=%d", spec.label, clients)
			b.Run(name, func(b *testing.B) {
				pool, err := ConnectPool(poolBenchDialer, poolBenchNames,
					ReceptionistConfig{MaxConnsPerLibrarian: clients})
				if err != nil {
					b.Fatal(err)
				}
				defer pool.Close()
				if spec.mode != ModeCN {
					if _, err := pool.SetupVocabulary(); err != nil {
						b.Fatal(err)
					}
				}
				if spec.mode == ModeCI {
					if _, err := pool.SetupCentralIndexRemote(10); err != nil {
						b.Fatal(err)
					}
				}
				work := make(chan int)
				errs := make(chan error, clients)
				var wg sync.WaitGroup
				b.ResetTimer()
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						sess := pool.Session()
						for i := range work {
							q := poolBenchQueries[i%len(poolBenchQueries)]
							if _, err := sess.Query(spec.mode, q, 20, Options{}); err != nil {
								errs <- err
								return
							}
						}
						errs <- nil
					}()
				}
				for i := 0; i < b.N; i++ {
					work <- i
				}
				close(work)
				wg.Wait()
				b.StopTimer()
				close(errs)
				for err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				secs := b.Elapsed().Seconds()
				var qps float64
				if secs > 0 {
					qps = float64(b.N) / secs
				}
				b.ReportMetric(qps, "queries/sec")
				rows[name] = poolBenchRow{
					Mode: spec.label, Clients: clients,
					Queries: b.N, Seconds: secs, QueriesSec: qps,
				}
			})
		}
	}
	if len(rows) == 0 {
		return
	}
	out := make([]poolBenchRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mode != out[j].Mode {
			return out[i].Mode < out[j].Mode
		}
		return out[i].Clients < out[j].Clients
	})
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pool.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_pool.json (%d rows)", len(out))
}
