// Package teraphim is a pure-Go reimplementation of TERAPHIM, the
// distributed text-retrieval system of de Kretser, Moffat, Shimmin and
// Zobel, "Methodologies for Distributed Information Retrieval" (ICDCS
// 1998), built on an MG-style compressed-index search engine.
//
// # Architecture
//
// A collection is divided into subcollections, each managed by an
// independent Librarian: a mono-server engine holding a compressed inverted
// index, a table of document weights, and a compressed document store.
// One or more Receptionists broker user queries to librarians and merge
// the returned rankings. Three federated methodologies are implemented:
//
//   - Central Nothing (CN): the receptionist knows only the librarian
//     list; each librarian ranks with its own local statistics and the
//     receptionist merges scores at face value.
//   - Central Vocabulary (CV): the receptionist merges the librarians'
//     vocabularies once, then ships global term weights with each query;
//     result scores are identical to a monolithic system's.
//   - Central Index (CI): the receptionist holds a grouped central index
//     (groups of G adjacent documents indexed as pseudo-documents), ranks
//     groups, and asks librarians to score only the expanded candidates.
//
// # Quick start
//
//	docs := []teraphim.Document{{Title: "a", Text: "hello distributed world"}}
//	lib, _ := teraphim.BuildLibrarian("demo", docs)
//	ranking, _ := lib.Engine().Rank("distributed", 10, nil)
//	_ = ranking.Results // scored documents; ranking.Stats has the work done
//
// See examples/ for complete programs, including a federated deployment
// over TCP and a simulated wide-area network.
//
// # Observability
//
// Every Pool collects metrics (query counters per methodology, per-stage
// latency histograms, connection-pool gauges) on an obs-package registry —
// a private one by default, or a shared one via ReceptionistConfig.Metrics.
// ServeMetrics exposes one or more registries as a Prometheus /metrics
// endpoint plus net/http/pprof profiles; see README.md for the endpoint
// recipe and the metric name table. Queries accept a context through
// QueryContext (on Receptionist, Pool and Session): cancellation aborts
// slot waits, retry backoffs and in-flight reads promptly.
//
// # Overload protection
//
// Two opt-in mechanisms guard a receptionist under heavy concurrent
// traffic. ReceptionistConfig.Cache enables an LRU result cache keyed by
// (mode, normalized query, k, merge strategy, top-R): a repeat query is
// answered from memory with zero librarian round trips, and every entry is
// invalidated when setup state changes or InvalidateCache runs (wire it to
// UpdatableLibrarian.OnUpdate so cached answers never outlive the
// collection they were computed from). ReceptionistConfig.Admission bounds
// concurrent evaluation: beyond MaxInFlight running queries and MaxQueue
// waiters, requests fail fast with ErrOverloaded instead of stacking up
// until every deadline blows.
//
// # Streaming ingestion
//
// An UpdatableLibrarian grows its subcollection while serving. Ingest
// enqueues document batches onto a bounded queue (context-aware, failing
// with ErrIngestQueueFull under sustained backpressure); background builders
// seal each batch into an immutable segment; a size-tiered policy merges
// segments so query fan-in stays logarithmic; Flush waits for visibility and
// surfaces asynchronous build errors; Compact folds everything to one
// segment on demand. Rankings over a segmented collection are exactly those
// of the equivalent single-segment collection. Update (rebuild-and-swap)
// and Append remain as synchronous compatibility wrappers.
//
// # Replication and hedging
//
// ReceptionistConfig.Replicas gives a librarian several interchangeable
// endpoints serving the same subcollection. Each exchange is routed by a
// per-librarian router: power-of-two-choices over the healthy replicas
// (fewer in-flight exchanges wins), with passive health tracking — an
// endpoint failing ReplicaEjectAfter consecutive exchanges is ejected from
// routing and probed back in after ReplicaProbeAfter. Replica sets grow and
// shrink live via AddReplica/RemoveReplica (versioned through the
// federation epoch like every setup change). Options.HedgeAfter additionally
// races a second replica when an exchange outlives a latency quantile of
// that librarian's recent history: the first reply wins, the loser is
// cancelled, and because replicas are interchangeable the result is
// bit-identical — hedging only cuts the tail. Trace.Hedges and the
// teraphim_hedge_*/teraphim_replica_* metric families account for all of it.
//
// # Collection selection
//
// At hundreds of subcollections, shipping every query to every librarian
// is the scaling wall. Options.TopR narrows the fan-out: SetupVocabulary
// derives CORI-style per-librarian collection scores alongside the global
// term statistics, and a TopR = R query contacts only the R librarians
// most likely to hold answers (Receptionist.SelectLibrarians previews the
// choice). Selection composes with everything else — CV eligibility, CI
// candidate expansion, partial results, admission and the result cache —
// and Trace.LibrariansSelected records what it did.
package teraphim

import (
	"net"

	"teraphim/internal/core"
	"teraphim/internal/eval"
	"teraphim/internal/index"
	"teraphim/internal/librarian"
	"teraphim/internal/obs"
	"teraphim/internal/protocol"
	"teraphim/internal/search"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
	"teraphim/internal/trecsynth"
)

// Core document and retrieval types.
type (
	// Document is a stored document: title plus text.
	Document = store.Document
	// Librarian manages one subcollection: index, store, query service.
	Librarian = librarian.Librarian
	// LibrarianServer runs a librarian behind a network listener.
	LibrarianServer = librarian.Server
	// BuildOptions configures BuildLibrarianWith.
	BuildOptions = librarian.BuildOptions
	// Receptionist brokers queries to librarians.
	Receptionist = core.Receptionist
	// ReceptionistConfig configures ConnectReceptionist.
	ReceptionistConfig = core.Config
	// CacheConfig enables and sizes the receptionist result cache
	// (ReceptionistConfig.Cache): repeated queries are answered from memory
	// with zero librarian round trips, invalidated by setup changes and
	// Receptionist.InvalidateCache / Pool.InvalidateCache.
	CacheConfig = core.CacheConfig
	// CacheStats snapshots the result cache's hit/miss/eviction counters.
	CacheStats = core.CacheStats
	// AdmissionConfig bounds concurrent query evaluation
	// (ReceptionistConfig.Admission); excess load sheds with ErrOverloaded.
	AdmissionConfig = core.AdmissionConfig
	// Federation is the shared, immutable-after-setup state of a
	// distributed collection: global numbering, merged vocabulary,
	// decompression models and the CI central index.
	Federation = core.Federation
	// Pool is a bounded per-librarian connection pool over one Federation;
	// it is safe for concurrent use by many sessions.
	Pool = core.Pool
	// Session is a lightweight per-client query handle over a Pool.
	Session = core.Session
	// Mode selects a distributed methodology (CN, CV, CI or MS).
	Mode = core.Mode
	// Options tunes one query evaluation.
	Options = core.Options
	// Result is a completed query with its merged answers and trace.
	Result = core.Result
	// Answer is one returned document.
	Answer = core.Answer
	// Trace records the protocol exchange behind one query.
	Trace = core.Trace
	// GroupedIndex is the CI methodology's space-reduced central index.
	GroupedIndex = core.GroupedIndex
	// MonoServer is the monolithic (MS) baseline.
	MonoServer = core.MonoServer
	// Engine is the mono-server ranked-query evaluator.
	Engine = search.Engine
	// SearchResult is one (document, score) pair from an Engine.
	SearchResult = search.Result
	// Analyzer is the document/query analysis pipeline.
	Analyzer = textproc.Analyzer
	// AnalyzerOption configures NewAnalyzer.
	AnalyzerOption = textproc.Option
	// ReplicaStatus is a point-in-time view of one replica endpoint: health,
	// in-flight exchanges and failure streak (Receptionist.Replicas /
	// Pool.Replicas).
	ReplicaStatus = core.ReplicaStatus
	// Dialer connects a receptionist to named librarians.
	Dialer = simnet.Dialer
	// ChaosDialer wraps a Dialer with per-endpoint fault and latency
	// injection (kill, revive, delay) for replica-failure drills; see
	// NewChaosDialer.
	ChaosDialer = simnet.Chaos
	// TCPDialer maps librarian names to host:port addresses.
	TCPDialer = simnet.TCPDialer
	// InProcessDialer serves librarians over in-process (optionally
	// delay-shaped) links.
	InProcessDialer = librarian.InProcessDialer
	// LinkConfig shapes an in-process link's latency and bandwidth.
	LinkConfig = simnet.LinkConfig
	// Corpus is a generated synthetic test collection.
	Corpus = trecsynth.Corpus
	// CorpusConfig controls synthetic corpus generation.
	CorpusConfig = trecsynth.Config
	// Qrels holds relevance judgements for effectiveness evaluation.
	Qrels = eval.Qrels
)

// Distributed methodologies.
const (
	ModeMS = core.ModeMS
	ModeCN = core.ModeCN
	ModeCV = core.ModeCV
	ModeCI = core.ModeCI
)

// WireFeatures is the bitmask of optional wire-protocol capabilities a pool
// requests in its Hello handshake (ReceptionistConfig.WireFeatures); each
// librarian grants the subset it supports, and ungranted features degrade
// to the seed framing.
type WireFeatures = protocol.Features

// Wire-protocol feature bits.
const (
	// FeaturePipelining tags frames with exchange ids so one connection
	// carries many concurrent exchanges with out-of-order replies.
	FeaturePipelining = core.FeaturePipelining
	// FeatureBatching lets rank-phase queries from concurrent clients
	// coalesce into one frame per librarian (Options.BatchWindow).
	FeatureBatching = core.FeatureBatching
	// FeatureNone pins the seed framing: no negotiation, byte-identical
	// wire traffic to a pre-feature deployment.
	FeatureNone = core.FeatureNone
)

// MergeStrategy selects how CN rankings are collated (see Options.Merge).
type MergeStrategy = core.MergeStrategy

// CN merge strategies.
const (
	MergeFaceValue  = core.MergeFaceValue
	MergeRoundRobin = core.MergeRoundRobin
	MergeNormalized = core.MergeNormalized
)

// Evaluator selects the rank-phase evaluation strategy (see
// Options.Evaluator): EvalExact is the exhaustive document-sorted kernel;
// EvalMaxScore and EvalWAND are rank-safe dynamic-pruning evaluators that
// skip postings which provably cannot reach the top k while returning
// bit-identical rankings.
type Evaluator = search.Evaluator

// Rank-phase evaluators.
const (
	EvalExact    = search.EvalExact
	EvalMaxScore = search.EvalMaxScore
	EvalWAND     = search.EvalWAND
)

// ParseEvaluator maps "exact" (or ""), "maxscore" and "wand" to their
// Evaluator values, for flag and config parsing.
func ParseEvaluator(s string) (Evaluator, error) { return search.ParseEvaluator(s) }

// ErrUnknownEvaluator is returned by the query path when Options.Evaluator
// names no defined evaluation strategy. Test with errors.Is.
var ErrUnknownEvaluator = search.ErrUnknownEvaluator

// BooleanResult is the union result of a distributed Boolean query.
type BooleanResult = core.BooleanResult

// ErrOverloaded is returned by the query path when admission control sheds
// a request (in-flight limit reached, queue full or deadline unmeetable).
// Test with errors.Is; a shed query consumed no librarian resources.
var ErrOverloaded = core.ErrOverloaded

// ErrUnknownMergeStrategy is returned by the query path when Options.Merge
// names no defined strategy. Test with errors.Is.
var ErrUnknownMergeStrategy = core.ErrUnknownMergeStrategy

// ErrSelectionNeedsVocabulary is returned by a TopR query (or
// SelectLibrarians) before SetupVocabulary has run. Test with errors.Is.
var ErrSelectionNeedsVocabulary = core.ErrSelectionNeedsVocabulary

// Observability types.
type (
	// MetricsRegistry collects metric instruments and renders them in
	// Prometheus text format. One registry may be shared by pools and
	// librarians; ReceptionistConfig.Metrics installs it on a pool, and
	// Librarian.Instrument on a librarian.
	MetricsRegistry = obs.Registry
	// MetricsServer is a running /metrics + pprof HTTP endpoint.
	MetricsServer = obs.Server
	// PoolMetrics is the observability surface of one Pool.
	PoolMetrics = core.Metrics
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ServeMetrics serves the registries' instruments at /metrics on addr (in
// registration order), with net/http/pprof mounted under /debug/pprof/.
// Close the returned server to stop.
func ServeMetrics(addr string, regs ...*MetricsRegistry) (*MetricsServer, error) {
	return obs.ListenAndServe(addr, regs...)
}

// Frequency-sorted retrieval (Persin-style per-query thresholding, the
// paper's §5 future work).
type (
	// FreqSortedIndex is an inverted file ordered by decreasing f_dt.
	FreqSortedIndex = index.FreqSorted
	// PrunedEngine evaluates thresholded ranked queries over a
	// FreqSortedIndex.
	PrunedEngine = search.PrunedEngine
	// Thresholds tunes pruning aggressiveness.
	Thresholds = search.Thresholds
)

// BuildFreqSorted converts an engine's index into its frequency-sorted
// equivalent.
func BuildFreqSorted(e *Engine) (*FreqSortedIndex, error) {
	return index.BuildFreqSorted(e.Index())
}

// NewPrunedEngine wraps a frequency-sorted index for thresholded ranking.
func NewPrunedEngine(fs *FreqSortedIndex, analyzer *Analyzer) *PrunedEngine {
	return search.NewPrunedEngine(fs, analyzer)
}

// NewAnalyzer returns the standard analysis pipeline (lowercase
// tokenisation, English stopwords, Porter stemming); options disable
// stages.
func NewAnalyzer(opts ...AnalyzerOption) *Analyzer { return textproc.NewAnalyzer(opts...) }

// WithoutStopwords disables stopword removal.
func WithoutStopwords() AnalyzerOption { return textproc.WithoutStopwords() }

// WithoutStemming disables the Porter stemmer.
func WithoutStemming() AnalyzerOption { return textproc.WithoutStemming() }

// WithStopwords installs a custom stopword list.
func WithStopwords(words []string) AnalyzerOption { return textproc.WithStopwords(words) }

// BuildLibrarian indexes and compresses docs into a librarian named name,
// using the standard analyzer.
func BuildLibrarian(name string, docs []Document) (*Librarian, error) {
	return librarian.Build(name, docs, librarian.BuildOptions{})
}

// BuildLibrarianWith is BuildLibrarian with explicit options.
func BuildLibrarianWith(name string, docs []Document, opts BuildOptions) (*Librarian, error) {
	return librarian.Build(name, docs, opts)
}

// Streaming ingestion: an UpdatableLibrarian grows its collection while
// serving, LSM-style — documents stream through Ingest onto a bounded queue,
// background builders seal them into immutable segments, and a size-tiered
// policy merges segments behind the scenes. Queries always see one
// consistent snapshot; every publication bumps the epoch and fires OnUpdate
// (wire it to Pool.InvalidateCache). This is the per-subcollection update
// story that §4 of the paper counts among distribution's management
// benefits, taken from rebuild-and-swap to incremental.
type (
	// UpdatableLibrarian is a librarian whose collection can grow
	// (Ingest/Append), be compacted (Compact) or be replaced wholesale
	// (Update) while serving.
	UpdatableLibrarian = librarian.UpdatableLibrarian
	// IngestConfig tunes an updatable librarian's ingest pipeline: queue
	// depth, builder concurrency and the size-tiered merge policy. Install
	// with UpdatableLibrarian.ConfigureIngest before the first Ingest.
	IngestConfig = librarian.IngestConfig
	// SegmentStats is a point-in-time snapshot of an updatable librarian's
	// segments and ingest pipeline counters.
	SegmentStats = librarian.SegmentStats
	// SegmentInfo describes one live segment of an updatable librarian.
	SegmentInfo = librarian.SegmentInfo
)

// ErrIngestQueueFull is returned by UpdatableLibrarian.Ingest when the
// bounded ingest queue stays full until the call's context expires — the
// backpressure signal that documents arrive faster than the background
// builders retire them. Test with errors.Is.
var ErrIngestQueueFull = librarian.ErrIngestQueueFull

// ErrLibrarianClosed is returned by ingest operations on an
// UpdatableLibrarian after Close. Test with errors.Is.
var ErrLibrarianClosed = librarian.ErrLibrarianClosed

// NewUpdatableLibrarian builds the initial collection of an updatable
// librarian.
func NewUpdatableLibrarian(name string, docs []Document, opts BuildOptions) (*UpdatableLibrarian, error) {
	return librarian.NewUpdatable(name, docs, opts)
}

// ServeLibrarian serves lib's collection on ln until Close.
func ServeLibrarian(lib *Librarian, ln net.Listener) *LibrarianServer {
	return librarian.Serve(lib, ln)
}

// SaveCollection persists a librarian's collection to a directory.
func SaveCollection(dir string, lib *Librarian, stopwords, stemming bool) error {
	return librarian.Save(dir, lib, librarian.SaveOptions{Stopwords: stopwords, Stemming: stemming})
}

// LoadCollection reopens a collection saved with SaveCollection.
func LoadCollection(dir string) (*Librarian, error) { return librarian.Load(dir) }

// NewInProcessDialer wires librarians to a receptionist through in-process
// links with the given shaping (zero LinkConfig means no delay).
func NewInProcessDialer(libs []*Librarian, cfg LinkConfig) *InProcessDialer {
	return librarian.NewInProcessDialer(libs, cfg)
}

// NewChaosDialer wraps inner with per-endpoint fault and latency injection:
// Kill(endpoint) makes one replica refuse dials and severs its live
// connections, Revive restores it, SetDelay shapes it slow. It is how the
// chaos tests (and the README's kill-a-replica demo) break individual
// replicas deterministically without a real network.
func NewChaosDialer(inner Dialer) *ChaosDialer { return simnet.NewChaos(inner) }

// ConnectReceptionist dials the named librarians (order fixes global
// document numbering) and performs the initial Hello exchange. It is the
// single-client convenience over ConnectPool: a Receptionist is a stateless
// handle on the pool it wraps, so ConnectReceptionist(...) is exactly
// ConnectPool(...) followed by NewReceptionist.
func ConnectReceptionist(dialer Dialer, names []string, cfg ReceptionistConfig) (*Receptionist, error) {
	pool, err := ConnectPool(dialer, names, cfg)
	if err != nil {
		return nil, err
	}
	return NewReceptionist(pool), nil
}

// NewReceptionist wraps an already-connected pool in the Receptionist
// convenience API.
func NewReceptionist(pool *Pool) *Receptionist { return core.NewReceptionist(pool) }

// ConnectPool dials the named librarians and returns a connection pool
// whose Federation is shared by every Session: run the Setup* exchanges
// once, then fan out concurrent clients over Pool.Query or Pool.Session.
func ConnectPool(dialer Dialer, names []string, cfg ReceptionistConfig) (*Pool, error) {
	return core.NewPool(dialer, names, cfg)
}

// BuildGroupedIndex builds the CI methodology's central grouped index from
// the analysed term lists of every document in global order.
func BuildGroupedIndex(docTerms [][]string, groupSize int, analyzer *Analyzer) (*GroupedIndex, error) {
	return core.BuildGrouped(docTerms, groupSize, analyzer)
}

// NewMonoServer wraps an engine (and optional store and key table) as the
// MS baseline.
func NewMonoServer(engine *Engine, docs *DocumentStore, keys []string) (*MonoServer, error) {
	return core.NewMonoServer(engine, docs, keys)
}

// DocumentStore is a compressed document archive.
type DocumentStore = store.Store

// BuildStore compresses documents into a DocumentStore.
func BuildStore(docs []Document) (*DocumentStore, error) { return store.Build(docs) }

// GenerateCorpus builds the synthetic TREC-like corpus used by the paper's
// experiments.
func GenerateCorpus(cfg CorpusConfig) (*Corpus, error) { return trecsynth.Generate(cfg) }

// DefaultCorpusConfig returns the standard experiment corpus configuration.
func DefaultCorpusConfig() CorpusConfig { return trecsynth.DefaultConfig() }

// SkewedCorpusConfig returns a corpus configuration of numSubs small,
// topically focused subcollections of docsPerSub documents each — the
// many-subcollections regime where top-R collection selection
// (Options.TopR) pays off.
func SkewedCorpusConfig(numSubs, docsPerSub int) CorpusConfig {
	return trecsynth.SkewedConfig(numSubs, docsPerSub)
}
