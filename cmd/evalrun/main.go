// Command evalrun measures retrieval effectiveness of a distributed
// deployment: it loads built collections, serves them in-process, runs a
// query set through a receptionist under the chosen methodology, and scores
// the merged rankings against relevance judgements — the evaluation loop
// behind the paper's Table 1, usable on any corpus.
//
// Usage:
//
//	evalrun -queries corpus/queries.tsv -qrels corpus/qrels.tsv \
//	        -cols col/AP,col/FR,col/WSJ,col/ZIFF [-mode cv] [-k 1000] [-kprime 100]
//
// Input formats match cmd/trecgen's output: queries.tsv is
// id<TAB>kind<TAB>text; qrels.tsv is queryid<TAB>dockey with dockey
// "collection:localid".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"teraphim/internal/core"
	"teraphim/internal/eval"
	"teraphim/internal/librarian"
	"teraphim/internal/simnet"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evalrun:", err)
		os.Exit(1)
	}
}

type query struct {
	id, kind, text string
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("evalrun", flag.ContinueOnError)
	queriesPath := fs.String("queries", "", "queries.tsv path (required)")
	qrelsPath := fs.String("qrels", "", "qrels.tsv path (required)")
	cols := fs.String("cols", "", "comma-separated collection directories (required)")
	mode := fs.String("mode", "cv", "methodology: ms, cn, cv or ci")
	k := fs.Int("k", 1000, "ranking depth")
	kPrime := fs.Int("kprime", 100, "CI groups to expand")
	groupSize := fs.Int("G", 10, "CI group size")
	topK := fs.Int("top", 20, "relevant-in-top depth")
	timeout := fs.Duration("timeout", 0, "per-exchange deadline (0 = none)")
	retries := fs.Int("retries", 0, "extra attempts per librarian exchange after a transient failure")
	backoff := fs.Duration("backoff", 50*time.Millisecond, "base retry backoff, doubled per attempt")
	partial := fs.Bool("partial", false, "score degraded rankings when librarians fail instead of aborting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queriesPath == "" || *qrelsPath == "" || *cols == "" {
		return fmt.Errorf("-queries, -qrels and -cols are required")
	}

	queries, err := loadQueries(*queriesPath)
	if err != nil {
		return err
	}
	qrels, err := loadQrels(*qrelsPath)
	if err != nil {
		return err
	}

	var libs []*librarian.Librarian
	var names []string
	for _, dir := range strings.Split(*cols, ",") {
		lib, err := librarian.Load(strings.TrimSpace(dir))
		if err != nil {
			return err
		}
		libs = append(libs, lib)
		names = append(names, lib.Name())
	}
	analyzer := libs[0].Engine().Analyzer()
	dialer := librarian.NewInProcessDialer(libs, simnet.LinkConfig{})
	recep, err := core.Connect(dialer, names, core.Config{Analyzer: analyzer})
	if err != nil {
		return err
	}
	defer func() {
		recep.Close()
		dialer.Wait()
	}()

	var qmode core.Mode
	opts := core.Options{
		Timeout:      *timeout,
		Retries:      *retries,
		Backoff:      *backoff,
		AllowPartial: *partial,
	}
	switch strings.ToLower(*mode) {
	case "ms":
		qmode = core.ModeMS // approximated by CV, which is score-identical
		qmode = core.ModeCV
	case "cn":
		qmode = core.ModeCN
	case "cv":
		qmode = core.ModeCV
	case "ci":
		qmode = core.ModeCI
		opts.KPrime = *kPrime
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if qmode != core.ModeCN {
		if _, err := recep.SetupVocabulary(); err != nil {
			return err
		}
	}
	if qmode == core.ModeCI {
		if _, err := recep.SetupCentralIndexRemote(*groupSize); err != nil {
			return err
		}
	}

	byKind := map[string][]query{}
	for _, q := range queries {
		byKind[q.kind] = append(byKind[q.kind], q)
	}
	for kind, qs := range byKind {
		runs := make(map[string]eval.Run, len(qs))
		degraded := 0
		for _, q := range qs {
			res, err := recep.Query(qmode, q.text, *k, opts)
			if err != nil {
				return fmt.Errorf("query %s: %w", q.id, err)
			}
			if res.Trace.Degraded {
				degraded++
			}
			run := make(eval.Run, len(res.Answers))
			for i, a := range res.Answers {
				run[i] = a.Key()
			}
			runs[q.id] = run
		}
		s := eval.EvaluateFull(qrels, runs, *k, *topK)
		fmt.Fprintf(w, "%s queries (%s mode): %s; MAP %.2f%%, R-precision %.2f%%\n",
			kind, strings.ToUpper(*mode), s.Summary, s.MAP, s.RPrecision)
		if degraded > 0 {
			fmt.Fprintf(w, "  %d of %d queries answered degraded (librarian failures tolerated)\n",
				degraded, len(qs))
		}
	}
	return nil
}

func loadQueries(path string) ([]query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []query
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("malformed query line %q", line)
		}
		out = append(out, query{id: parts[0], kind: parts[1], text: parts[2]})
	}
	return out, scanner.Err()
}

func loadQrels(path string) (*eval.Qrels, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	qrels := eval.NewQrels()
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		qid, key, found := strings.Cut(line, "\t")
		if !found {
			return nil, fmt.Errorf("malformed qrels line %q", line)
		}
		qrels.Judge(qid, key)
	}
	return qrels, scanner.Err()
}
