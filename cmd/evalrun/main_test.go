package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"teraphim/internal/librarian"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

// fixture creates two collections, a query file and qrels on disk.
func fixture(t *testing.T) (queries, qrels string, cols []string) {
	t.Helper()
	base := t.TempDir()
	analyzer := textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming())
	parts := map[string][]store.Document{
		"A": {
			{Title: "a0", Text: "solar panels generate electricity"},
			{Title: "a1", Text: "wind turbines also generate electricity"},
		},
		"B": {
			{Title: "b0", Text: "coal plants burn fossil fuel"},
			{Title: "b1", Text: "solar farms cover the desert"},
		},
	}
	for name, docs := range parts {
		lib, err := librarian.Build(name, docs, librarian.BuildOptions{Analyzer: analyzer})
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(base, "col-"+name)
		if err := librarian.Save(dir, lib, librarian.SaveOptions{}); err != nil {
			t.Fatal(err)
		}
		cols = append(cols, dir)
	}
	queries = filepath.Join(base, "queries.tsv")
	if err := os.WriteFile(queries, []byte("Q1\tshort\tsolar electricity\nQ2\tshort\tcoal fuel\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	qrels = filepath.Join(base, "qrels.tsv")
	if err := os.WriteFile(qrels, []byte("Q1\tA:0\nQ1\tB:1\nQ2\tB:0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return queries, qrels, cols
}

func TestEvalRunModes(t *testing.T) {
	queries, qrels, cols := fixture(t)
	for _, mode := range []string{"cv", "cn", "ci"} {
		var buf bytes.Buffer
		err := run(&buf, []string{
			"-queries", queries, "-qrels", qrels,
			"-cols", strings.Join(cols, ","),
			"-mode", mode, "-k", "10", "-G", "2", "-kprime", "2",
		})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		out := buf.String()
		if !strings.Contains(out, "11-pt avg") || !strings.Contains(out, "over 2 queries") {
			t.Fatalf("mode %s output: %s", mode, out)
		}
		// The fixture is trivially retrievable: expect a high average.
		var pct float64
		if _, err := fmt.Sscanf(out[strings.Index(out, "11-pt avg")+len("11-pt avg"):], " %f%%", &pct); err != nil {
			t.Fatalf("cannot parse output %q: %v", out, err)
		}
		if pct < 50 {
			t.Fatalf("mode %s: 11-pt %f%% implausibly low\n%s", mode, pct, out)
		}
	}
}

func TestEvalRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil); err == nil {
		t.Fatal("missing flags: want error")
	}
	queries, qrels, cols := fixture(t)
	if err := run(&buf, []string{"-queries", queries, "-qrels", qrels, "-cols", strings.Join(cols, ","), "-mode", "bogus"}); err == nil {
		t.Fatal("bad mode: want error")
	}
	if err := run(&buf, []string{"-queries", "/nonexistent", "-qrels", qrels, "-cols", cols[0]}); err == nil {
		t.Fatal("bad queries path: want error")
	}
}

func TestLoaders(t *testing.T) {
	queries, qrels, _ := fixture(t)
	qs, err := loadQueries(queries)
	if err != nil || len(qs) != 2 {
		t.Fatalf("loadQueries: %v, %d", err, len(qs))
	}
	if qs[0].id != "Q1" || qs[0].kind != "short" || qs[0].text != "solar electricity" {
		t.Fatalf("query parse: %+v", qs[0])
	}
	qr, err := loadQrels(qrels)
	if err != nil {
		t.Fatal(err)
	}
	if !qr.IsRelevant("Q1", "A:0") || qr.IsRelevant("Q2", "A:0") {
		t.Fatal("qrels parse wrong")
	}
	// Malformed files are rejected.
	bad := filepath.Join(t.TempDir(), "bad.tsv")
	if err := os.WriteFile(bad, []byte("onlyonefield\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadQueries(bad); err == nil {
		t.Fatal("malformed queries: want error")
	}
	if _, err := loadQrels(bad); err == nil {
		t.Fatal("malformed qrels: want error")
	}
}
