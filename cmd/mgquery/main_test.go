package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"teraphim/internal/librarian"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

func buildCollection(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "col")
	lib, err := librarian.Build("q", []store.Document{
		{Title: "cats", Text: "cats nap in the warm sun"},
		{Title: "dogs", Text: "dogs chase cats up trees"},
		{Title: "fish", Text: "fish swim in cool water"},
	}, librarian.BuildOptions{
		Analyzer: textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := librarian.Save(dir, lib, librarian.SaveOptions{Stopwords: false, Stemming: false}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestOneShotRankedQuery(t *testing.T) {
	col := buildCollection(t)
	var buf bytes.Buffer
	if err := run(&buf, strings.NewReader(""), []string{"-col", col, "-k", "2", "cats"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 answers") {
		t.Fatalf("output: %s", out)
	}
	if !strings.Contains(out, "cats") || !strings.Contains(out, "dogs") {
		t.Fatalf("expected both cat docs: %s", out)
	}
}

func TestOneShotBooleanQuery(t *testing.T) {
	col := buildCollection(t)
	var buf bytes.Buffer
	if err := run(&buf, strings.NewReader(""), []string{"-col", col, "-boolean", "cats AND NOT dogs"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 documents match") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestInteractiveMode(t *testing.T) {
	col := buildCollection(t)
	var buf bytes.Buffer
	stdin := strings.NewReader("fish\n\nswim water\n")
	if err := run(&buf, stdin, []string{"-col", col, "-show"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "q>") < 3 {
		t.Fatalf("expected prompts: %s", out)
	}
	if !strings.Contains(out, "fish") {
		t.Fatalf("no fish answer: %s", out)
	}
}

func TestQueryFlagsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, strings.NewReader(""), []string{"cats"}); err == nil {
		t.Fatal("missing -col: want error")
	}
	if err := run(&buf, strings.NewReader(""), []string{"-col", "/nonexistent", "cats"}); err == nil {
		t.Fatal("bad collection: want error")
	}
}
