// Command mgquery evaluates ranked (or Boolean) queries against one
// collection built by mgbuild — the mono-server MG experience.
//
// Usage:
//
//	mgquery -col collection/ [-k 20] [-boolean] [-show] "query terms"
//	mgquery -col collection/            # interactive: queries from stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"teraphim/internal/librarian"
)

func main() {
	if err := run(os.Stdout, os.Stdin, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mgquery:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, stdin io.Reader, args []string) error {
	fs := flag.NewFlagSet("mgquery", flag.ContinueOnError)
	col := fs.String("col", "", "collection directory (required)")
	k := fs.Int("k", 20, "number of answers")
	boolean := fs.Bool("boolean", false, "evaluate as a Boolean expression")
	show := fs.Bool("show", false, "print document text, not just titles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *col == "" {
		return fmt.Errorf("-col is required")
	}
	lib, err := librarian.Load(*col)
	if err != nil {
		return err
	}

	query := strings.Join(fs.Args(), " ")
	if query != "" {
		return answer(w, lib, query, *k, *boolean, *show)
	}
	scanner := bufio.NewScanner(stdin)
	fmt.Fprintf(w, "%s> ", lib.Name())
	for scanner.Scan() {
		q := strings.TrimSpace(scanner.Text())
		if q == "" {
			fmt.Fprintf(w, "%s> ", lib.Name())
			continue
		}
		if err := answer(w, lib, q, *k, *boolean, *show); err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
		fmt.Fprintf(w, "%s> ", lib.Name())
	}
	return scanner.Err()
}

func answer(w io.Writer, lib *librarian.Librarian, query string, k int, boolean, show bool) error {
	if boolean {
		q, err := lib.Engine().ParseBoolean(query)
		if err != nil {
			return err
		}
		docs, stats := lib.Engine().EvaluateBoolean(q)
		fmt.Fprintf(w, "%d documents match (%d postings decoded)\n", len(docs), stats.PostingsDecoded)
		if len(docs) > k {
			docs = docs[:k]
		}
		for _, d := range docs {
			title, err := lib.Store().Title(d)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %6d  %s\n", d, title)
		}
		return nil
	}
	ranking, err := lib.Engine().Rank(query, k, nil)
	results, stats := ranking.Results, ranking.Stats
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d answers (%d postings decoded, %d candidates)\n",
		len(results), stats.PostingsDecoded, stats.CandidateDocs)
	for i, r := range results {
		title, err := lib.Store().Title(r.Doc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%3d. %-30s %.4f\n", i+1, title, r.Score)
		if show {
			doc, err := lib.Store().Fetch(r.Doc)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "     %s\n", firstLine(doc.Text))
		}
	}
	return nil
}

func firstLine(text string) string {
	if i := strings.IndexByte(text, '\n'); i >= 0 {
		text = text[:i]
	}
	if len(text) > 120 {
		text = text[:120] + "..."
	}
	return text
}
