// Command ingest demonstrates streaming ingestion under live query load: an
// in-process updatable librarian keeps answering a fleet of query clients
// while document batches stream in through the bounded ingest queue,
// background builders seal them into segments and the size-tiered policy
// merges them down. The report shows both sides of the trade — ingest
// throughput (docs/sec) and query throughput (queries/sec) measured while
// the collection was growing — plus the segment bookkeeping: segments live,
// merges installed, queue-full waits (backpressure events).
//
// Usage:
//
//	ingest [-seed 500] [-docs 2000] [-batch 50] [-clients 4] [-k 10]
//	       [-queue 16] [-workers 1] [-fanin 4] [-minseg 256] [-compact]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"teraphim/internal/core"
	"teraphim/internal/librarian"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ingest:", err)
		os.Exit(1)
	}
}

var vocab = []string{
	"harbor", "tide", "anchor", "compass", "lantern", "storm", "reef",
	"whale", "gull", "mast", "salt", "chart", "drift", "squall", "keel",
	"beacon", "current", "fathom", "horizon", "jetty",
}

// synthDoc composes a deterministic pseudo-random document.
func synthDoc(rng *rand.Rand, id int) store.Document {
	var sb strings.Builder
	for i := 0; i < 12+rng.Intn(20); i++ {
		sb.WriteString(vocab[rng.Intn(len(vocab))])
		sb.WriteByte(' ')
	}
	return store.Document{Title: fmt.Sprintf("doc-%06d", id), Text: strings.TrimSpace(sb.String())}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	seed := fs.Int("seed", 500, "documents in the initial collection")
	total := fs.Int("docs", 2000, "documents to stream in during the run")
	batch := fs.Int("batch", 50, "documents per ingest batch")
	clients := fs.Int("clients", 4, "concurrent query clients during ingestion")
	k := fs.Int("k", 10, "answers per query")
	queue := fs.Int("queue", 16, "ingest queue depth in batches")
	workers := fs.Int("workers", 1, "background segment builders")
	fanIn := fs.Int("fanin", 4, "size-tier merge fan-in (K adjacent same-tier segments merge)")
	minSeg := fs.Int("minseg", 256, "tier-0 segment width in documents")
	compact := fs.Bool("compact", false, "compact to a single segment after ingestion and report the cost")
	rngSeed := fs.Int64("rngseed", 1, "corpus generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seed < 1 || *total < 1 || *batch < 1 || *clients < 1 {
		return fmt.Errorf("-seed, -docs, -batch and -clients must be positive")
	}

	rng := rand.New(rand.NewSource(*rngSeed))
	seedDocs := make([]store.Document, *seed)
	for i := range seedDocs {
		seedDocs[i] = synthDoc(rng, i)
	}
	up, err := librarian.NewUpdatable("LIVE", seedDocs, librarian.BuildOptions{})
	if err != nil {
		return err
	}
	defer up.Close()
	if err := up.ConfigureIngest(librarian.IngestConfig{
		QueueDepth: *queue, Workers: *workers, MergeFanIn: *fanIn, MinSegmentDocs: *minSeg,
	}); err != nil {
		return err
	}

	dialer := librarian.NewInProcessDialer(nil, simnet.LinkConfig{})
	dialer.AddEndpoint("LIVE", up, simnet.LinkConfig{})
	pool, err := core.NewPool(dialer, []string{"LIVE"}, core.Config{MaxConnsPerLibrarian: *clients})
	if err != nil {
		return err
	}
	defer pool.Close()

	queries := make([]string, 32)
	for i := range queries {
		queries[i] = vocab[rng.Intn(len(vocab))] + " " + vocab[rng.Intn(len(vocab))]
	}

	// The producer streams batches; clients query CN (no setup state to go
	// stale) until ingestion — including the final Flush — completes.
	ctx := context.Background()
	ingestDone := make(chan error, 1)
	start := time.Now()
	var ingestWall time.Duration
	go func() {
		id := *seed
		for sent := 0; sent < *total; sent += *batch {
			n := *batch
			if left := *total - sent; left < n {
				n = left
			}
			docs := make([]store.Document, n)
			for i := range docs {
				docs[i] = synthDoc(rng, id)
				id++
			}
			if err := up.Ingest(ctx, docs); err != nil {
				ingestDone <- err
				return
			}
		}
		err := up.Flush(ctx)
		ingestWall = time.Since(start)
		ingestDone <- err
	}()

	var queriesDone atomic.Uint64
	stopQueries := make(chan struct{})
	var wg sync.WaitGroup
	qErrs := make(chan error, *clients)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := pool.Session()
			for i := c; ; i++ {
				select {
				case <-stopQueries:
					qErrs <- nil
					return
				default:
				}
				if _, err := sess.Query(core.ModeCN, queries[i%len(queries)], *k, core.Options{}); err != nil {
					qErrs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				queriesDone.Add(1)
			}
		}(c)
	}

	ingestErr := <-ingestDone
	close(stopQueries)
	wg.Wait()
	close(qErrs)
	if ingestErr != nil {
		return fmt.Errorf("ingest: %w", ingestErr)
	}
	for err := range qErrs {
		if err != nil {
			return err
		}
	}

	st := up.SegmentStats()
	fmt.Fprintf(w, "collection      %10d docs (%d seeded + %d streamed)\n", st.TotalDocs, *seed, *total)
	fmt.Fprintf(w, "ingest wall     %10.2fs\n", ingestWall.Seconds())
	fmt.Fprintf(w, "ingest rate     %10.1f docs/sec\n", float64(*total)/ingestWall.Seconds())
	fmt.Fprintf(w, "query load      %10d queries by %d clients during ingestion\n", queriesDone.Load(), *clients)
	fmt.Fprintf(w, "query rate      %10.1f queries/sec\n", float64(queriesDone.Load())/ingestWall.Seconds())
	fmt.Fprintf(w, "batches built   %10d (queue depth %d)\n", st.BatchesBuilt, st.QueueCap)
	fmt.Fprintf(w, "segments live   %10d\n", len(st.Segments))
	fmt.Fprintf(w, "merges          %10d\n", st.Merges)
	fmt.Fprintf(w, "queue-full waits%10d (backpressure events)\n", st.QueueFullWaits)
	fmt.Fprintf(w, "epoch           %10d manifest publications\n", st.Epoch)

	if *compact {
		cStart := time.Now()
		if err := up.Compact(ctx); err != nil {
			return fmt.Errorf("compact: %w", err)
		}
		st = up.SegmentStats()
		fmt.Fprintf(w, "compacted to    %10d segment(s) in %.2fs\n", len(st.Segments), time.Since(cStart).Seconds())
	}
	return nil
}
