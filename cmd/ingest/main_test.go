package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestIngestUnderQueryLoad(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-seed", "40", "-docs", "120", "-batch", "10",
		"-clients", "2", "-k", "5",
		"-queue", "4", "-fanin", "2", "-minseg", "10",
		"-compact",
	})
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"160 docs (40 seeded + 120 streamed)",
		"ingest rate",
		"query rate",
		"merges",
		"compacted to             1 segment(s)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestIngestRejectsBadFlags(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-docs", "0"}); err == nil {
		t.Fatal("zero -docs accepted")
	}
}
