package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"teraphim/internal/librarian"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

func startLibrarians(t *testing.T) string {
	t.Helper()
	analyzer := textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming())
	var specs []string
	for name, docs := range map[string][]store.Document{
		"A": {
			{Title: "a0", Text: "solar panels generate clean electricity"},
			{Title: "a1", Text: "wind turbines generate renewable power"},
		},
		"B": {
			{Title: "b0", Text: "hydro dams store renewable energy"},
		},
	} {
		lib, err := librarian.Build(name, docs, librarian.BuildOptions{Analyzer: analyzer})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := librarian.Serve(lib, ln)
		t.Cleanup(func() { srv.Close() })
		specs = append(specs, name+"="+srv.Addr().String())
	}
	return strings.Join(specs, ",")
}

func writeQueries(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "queries.txt")
	content := "renewable energy\nQ1\tshort\tsolar electricity\nwind power\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStressDrivesLoad(t *testing.T) {
	libs := startLibrarians(t)
	queries := writeQueries(t)
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-libs", libs, "-queryfile", queries,
		"-mode", "cv", "-clients", "3", "-n", "30", "-k", "5",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"30 queries, 3 clients", "throughput", "latency p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// setupLine extracts the "setup ... round trips" report line.
func setupLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "setup") {
			return line
		}
	}
	t.Fatalf("no setup line in:\n%s", out)
	return ""
}

// TestStressSetupOnce pins the shared-federation contract: the number of
// setup round trips must not depend on -clients, because vocabulary and
// model exchanges happen once on the pool, not once per client.
func TestStressSetupOnce(t *testing.T) {
	libs := startLibrarians(t)
	queries := writeQueries(t)
	var lines []string
	for _, clients := range []string{"1", "8"} {
		var buf bytes.Buffer
		err := run(&buf, []string{
			"-libs", libs, "-queryfile", queries,
			"-mode", "cv", "-clients", clients, "-n", "16", "-k", "3",
		})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, setupLine(t, buf.String()))
	}
	if lines[0] != lines[1] {
		t.Fatalf("setup cost grew with clients:\n1 client:  %s\n8 clients: %s", lines[0], lines[1])
	}
}

func TestStressCIMode(t *testing.T) {
	libs := startLibrarians(t)
	queries := writeQueries(t)
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-libs", libs, "-queryfile", queries,
		"-mode", "ci", "-clients", "4", "-n", "20", "-k", "3", "-group", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"20 queries, 4 clients, mode CI", "throughput"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestStressCNMode(t *testing.T) {
	libs := startLibrarians(t)
	queries := writeQueries(t)
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-libs", libs, "-queryfile", queries,
		"-mode", "cn", "-clients", "2", "-n", "10", "-fetch",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10 queries") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestStressValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil); err == nil {
		t.Fatal("missing flags: want error")
	}
	if err := run(&buf, []string{"-libs", "A=1.2.3.4:1", "-queryfile", "/nonexistent"}); err == nil {
		t.Fatal("bad query file: want error")
	}
	queries := writeQueries(t)
	if err := run(&buf, []string{"-libs", "bad-spec", "-queryfile", queries}); err == nil {
		t.Fatal("malformed lib spec: want error")
	}
	if err := run(&buf, []string{"-libs", "A=x", "-queryfile", queries, "-mode", "warp"}); err == nil {
		t.Fatal("bad mode: want error")
	}
	if err := run(&buf, []string{"-libs", "A=x", "-queryfile", queries, "-clients", "0"}); err == nil {
		t.Fatal("zero clients: want error")
	}
}

func TestLoadQueriesTSV(t *testing.T) {
	path := writeQueries(t)
	qs, err := loadQueries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("loaded %d queries", len(qs))
	}
	if qs[1] != "solar electricity" {
		t.Fatalf("TSV query parsed as %q", qs[1])
	}
}
