// Command stress drives concurrent query load at running librarian servers
// and reports wall-clock throughput and latency percentiles — the
// multiple-users-at-capacity regime the paper distinguishes from single
// query response time. All clients share one federation: the vocabulary,
// model and central-index setup exchanges run exactly once regardless of
// -clients, and the clients fan out over a bounded per-librarian
// connection pool.
//
// Usage:
//
//	stress -libs AP=host:7001,FR=host:7002 -queryfile queries.txt \
//	       [-mode cv] [-clients 8] [-conns 0] [-n 200] [-k 20] [-fetch]
//
// Repeating a librarian name declares replicas of its subcollection
// (-libs AP=h1:7001,AP=h2:7001 routes AP's exchanges across both endpoints,
// auto-named AP#0 and AP#1); -hedge 0.95 additionally races a second replica
// whenever an exchange outlives that latency quantile.
//
// The query file holds one query per line (cmd/trecgen's queries.tsv also
// works; the last tab-separated field is used).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"teraphim/internal/core"
	"teraphim/internal/obs"
	"teraphim/internal/search"
	"teraphim/internal/simnet"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("stress", flag.ContinueOnError)
	libs := fs.String("libs", "", "comma-separated name=host:port librarian list (required)")
	queryFile := fs.String("queryfile", "", "file of queries, one per line (required)")
	mode := fs.String("mode", "cv", "methodology: cn, cv or ci")
	clients := fs.Int("clients", 8, "concurrent client sessions over the shared pool")
	conns := fs.Int("conns", 0, "max pooled connections per librarian (0 = match -clients)")
	n := fs.Int("n", 200, "total queries to issue")
	k := fs.Int("k", 20, "answers per query")
	kprime := fs.Int("kprime", 0, "CI: groups to expand (0 = paper default)")
	group := fs.Int("group", 10, "CI: documents per central-index group")
	fetch := fs.Bool("fetch", false, "retrieve documents too")
	timeout := fs.Duration("timeout", 0, "per-exchange deadline (0 = none)")
	retries := fs.Int("retries", 0, "extra attempts per librarian exchange after a transient failure")
	backoff := fs.Duration("backoff", 50*time.Millisecond, "base retry backoff, doubled per attempt")
	partial := fs.Bool("partial", false, "answer from surviving librarians when some fail")
	minLibs := fs.Int("minlibs", 0, "with -partial, minimum surviving librarians per query (implies -partial)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the query run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (after the run) to this file")
	obsAddr := fs.String("obs", "", "serve Prometheus /metrics and pprof during the run (e.g. :9090; empty = off)")
	slowQuery := fs.Duration("slowquery", 0, "log queries slower than this with a per-stage breakdown (0 = off)")
	cache := fs.Int("cache", 0, "enable the result cache with this many entries (0 = off)")
	cacheBytes := fs.Int64("cachebytes", 0, "with -cache, approximate cache size bound in bytes (0 = default)")
	inflight := fs.Int("inflight", 0, "admission control: max concurrently evaluating queries (0 = unlimited)")
	queue := fs.Int("queue", 0, "with -inflight, max queries waiting for admission before shedding")
	queueWait := fs.Duration("queuewait", 0, "with -inflight, max time a query waits for admission (0 = until deadline)")
	topR := fs.Int("topr", 0, "collection selection: contact only the R librarians ranked most promising per query (0 = full fan-out)")
	hedge := fs.Float64("hedge", 0, "race a second replica when an exchange outlives this latency quantile, e.g. 0.95 (0 = off; needs replicated -libs)")
	batchWindow := fs.Duration("batchwindow", 0, "coalesce concurrent rank queries to the same librarian within this window into one frame (0 = off; needs librarians that grant batching)")
	evalName := fs.String("eval", "exact", "rank evaluation strategy: exact, maxscore or wand (rank-safe dynamic pruning)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *libs == "" || *queryFile == "" {
		return fmt.Errorf("-libs and -queryfile are required")
	}
	evaluator, err := search.ParseEvaluator(*evalName)
	if err != nil {
		return err
	}
	if *clients < 1 || *n < 1 {
		return fmt.Errorf("-clients and -n must be positive")
	}
	var qmode core.Mode
	switch strings.ToLower(*mode) {
	case "cn":
		qmode = core.ModeCN
	case "cv":
		qmode = core.ModeCV
	case "ci":
		qmode = core.ModeCI
	default:
		return fmt.Errorf("unsupported mode %q", *mode)
	}

	queries, err := loadQueries(*queryFile)
	if err != nil {
		return err
	}
	if len(queries) == 0 {
		return fmt.Errorf("no queries in %s", *queryFile)
	}

	dialer, names, replicas, err := parseLibs(*libs)
	if err != nil {
		return err
	}

	maxConns := *conns
	if maxConns <= 0 {
		maxConns = *clients
	}
	opts := core.Options{
		Fetch:              *fetch,
		CompressedTransfer: false,
		KPrime:             *kprime,
		Timeout:            *timeout,
		Retries:            *retries,
		Backoff:            *backoff,
		AllowPartial:       *partial,
		MinLibrarians:      *minLibs,
		TopR:               *topR,
		HedgeAfter:         *hedge,
		BatchWindow:        *batchWindow,
		Evaluator:          evaluator,
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	reg := obs.NewRegistry()
	if *obsAddr != "" {
		srv, err := obs.ListenAndServe(*obsAddr, reg)
		if err != nil {
			return fmt.Errorf("obs endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(w, "metrics and pprof on http://%s/ for the duration of the run\n", srv.Addr())
	}
	cfg := core.Config{MaxConnsPerLibrarian: maxConns, Metrics: reg, SlowQueryThreshold: *slowQuery, Replicas: replicas}
	if *cache > 0 {
		cfg.Cache = &core.CacheConfig{MaxEntries: *cache, MaxBytes: *cacheBytes}
	}
	if *inflight > 0 {
		cfg.Admission = &core.AdmissionConfig{MaxInFlight: *inflight, MaxQueue: *queue, MaxWait: *queueWait}
	}
	report, err := drive(dialer, names, qmode, queries, *clients, *n, *k, *group, opts, cfg)
	if err != nil {
		return err
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	fmt.Fprintf(w, "%d queries, %d clients, mode %s\n", report.completed, *clients, strings.ToUpper(*mode))
	fmt.Fprintf(w, "setup           %10d round trips, once for all clients\n", report.setupTrips)
	fmt.Fprintf(w, "wall clock      %10.2fs\n", report.elapsed.Seconds())
	fmt.Fprintf(w, "throughput      %10.1f queries/sec\n", report.throughput)
	fmt.Fprintf(w, "latency p50     %10.2fms\n", ms(report.p50))
	fmt.Fprintf(w, "latency p90     %10.2fms\n", ms(report.p90))
	fmt.Fprintf(w, "latency p99     %10.2fms\n", ms(report.p99))
	if *topR > 0 && report.completed > 0 {
		fmt.Fprintf(w, "libs asked      %10.2f mean per query (top-R selection, R=%d of %d)\n",
			float64(report.askedSum)/float64(report.completed), *topR, len(names))
	}
	if report.degraded > 0 || report.retried > 0 {
		fmt.Fprintf(w, "degraded        %10d queries (librarian failures tolerated)\n", report.degraded)
		fmt.Fprintf(w, "lib failures    %10d\n", report.libFailures)
		fmt.Fprintf(w, "retried calls   %10d\n", report.retried)
	}
	if *cache > 0 {
		fmt.Fprintf(w, "cache hits      %10d of %d completed queries\n", report.cacheHits, report.completed)
	}
	if *inflight > 0 {
		fmt.Fprintf(w, "shed            %10d queries (overloaded; not counted in latency)\n", report.shed)
	}
	if *hedge > 0 {
		fmt.Fprintf(w, "hedges          %10d launched, %d won (HedgeAfter %.2f)\n",
			report.hedges, report.hedgeWins, *hedge)
	}
	if report.completed > 0 {
		fmt.Fprintf(w, "wire rt/query   %10.2f round trips (setup excluded)\n",
			float64(report.wireTrips)/float64(report.completed))
		fmt.Fprintf(w, "wire bytes/query%10.0f\n",
			float64(report.wireBytes)/float64(report.completed))
	}
	return nil
}

// parseLibs turns the -libs spec into a dialer, the librarian order and the
// replica map. A repeated name declares replicas: its addresses become
// endpoints name#0, name#1, ... routed by the pool's per-librarian router.
func parseLibs(libs string) (simnet.TCPDialer, []string, map[string][]string, error) {
	dialer := simnet.TCPDialer{}
	var names []string
	addrs := map[string][]string{}
	for _, spec := range strings.Split(libs, ",") {
		name, addr, found := strings.Cut(spec, "=")
		if !found {
			return nil, nil, nil, fmt.Errorf("malformed librarian spec %q", spec)
		}
		if len(addrs[name]) == 0 {
			names = append(names, name)
		}
		addrs[name] = append(addrs[name], addr)
	}
	replicas := map[string][]string{}
	for _, name := range names {
		list := addrs[name]
		if len(list) == 1 {
			dialer[name] = list[0]
			continue
		}
		for i, addr := range list {
			ep := fmt.Sprintf("%s#%d", name, i)
			dialer[ep] = addr
			replicas[name] = append(replicas[name], ep)
		}
	}
	if len(replicas) == 0 {
		replicas = nil
	}
	return dialer, names, replicas, nil
}

type report struct {
	completed     int
	setupTrips    int
	elapsed       time.Duration
	throughput    float64
	p50, p90, p99 time.Duration
	// Fault-tolerance tallies: queries answered degraded, individual
	// librarian failures tolerated, and exchanges that needed a retry.
	degraded    int
	libFailures int
	retried     int
	// Overload-protection tallies: queries served from the result cache and
	// queries shed by admission control.
	cacheHits int
	shed      int
	// Fan-out width: librarians contacted, summed over completed queries
	// (cache hits contact none and drag the mean down, as they should).
	askedSum int
	// Hedging tallies from the pool metrics: replica races launched and won.
	hedges    uint64
	hedgeWins uint64
	// Wire cost of the timed run (setup exchanges excluded): completed
	// librarian round trips and bytes moved in either direction.
	wireTrips uint64
	wireBytes uint64
}

// drive runs the benchmark: one pool is set up once (Hello + whatever the
// mode needs), then clients pull query indexes from a shared channel, each
// as a lightweight session over the shared federation.
func drive(dialer simnet.Dialer, names []string, mode core.Mode, queries []string,
	clients, n, k, group int, opts core.Options, cfg core.Config) (report, error) {
	pool, err := core.NewPool(dialer, names, cfg)
	if err != nil {
		return report{}, err
	}
	defer pool.Close()
	setupTrips := len(names) // the Hello exchange
	// Top-R selection ranks librarians from the merged vocabulary
	// statistics, so it needs SetupVocabulary even under CN.
	if mode == core.ModeCV || mode == core.ModeCI || opts.TopR > 0 {
		trace, err := pool.SetupVocabulary()
		if err != nil {
			return report{}, err
		}
		setupTrips += trace.RoundTrips(core.PhaseSetup)
	}
	if mode == core.ModeCI {
		trace, err := pool.SetupCentralIndexRemote(group)
		if err != nil {
			return report{}, err
		}
		setupTrips += trace.RoundTrips(core.PhaseSetup)
	}

	// Snapshot the wire counters after setup so the report's per-query
	// figures cover only the timed run.
	m := pool.Metrics()
	wireTrips0, wireIn0, wireOut0 := m.WireRoundTrips(), m.WireBytesIn(), m.WireBytesOut()

	work := make(chan int)
	go func() {
		defer close(work)
		for i := 0; i < n; i++ {
			work <- i
		}
	}()

	latencies := make([]time.Duration, 0, n)
	var degraded, libFailures, retried, cacheHits, shed, askedSum int
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := pool.Session()
			for i := range work {
				qStart := time.Now()
				res, err := sess.Query(mode, queries[i%len(queries)], k, opts)
				if err != nil {
					// A shed query is the admission control working as
					// intended, not a run-ending failure: tally it and move
					// on so the report shows survivable load, not a crash.
					if errors.Is(err, core.ErrOverloaded) {
						mu.Lock()
						shed++
						mu.Unlock()
						continue
					}
					errs <- fmt.Errorf("query %d: %w", i, err)
					return
				}
				mu.Lock()
				latencies = append(latencies, time.Since(qStart))
				if res.Trace.Degraded {
					degraded++
					libFailures += len(res.Trace.Failures)
				}
				if res.Trace.CacheHit {
					cacheHits++
				}
				retried += res.Trace.RetryAttempts()
				askedSum += res.Trace.LibrariansAsked
				mu.Unlock()
			}
			errs <- nil
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return report{}, err
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep := report{completed: len(latencies), setupTrips: setupTrips, elapsed: elapsed,
		degraded: degraded, libFailures: libFailures, retried: retried,
		cacheHits: cacheHits, shed: shed, askedSum: askedSum,
		hedges: pool.Metrics().HedgesLaunched(), hedgeWins: pool.Metrics().HedgesWon(),
		wireTrips: m.WireRoundTrips() - wireTrips0,
		wireBytes: (m.WireBytesIn() - wireIn0) + (m.WireBytesOut() - wireOut0)}
	if elapsed > 0 {
		rep.throughput = float64(len(latencies)) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		rep.p50 = percentile(latencies, 50)
		rep.p90 = percentile(latencies, 90)
		rep.p99 = percentile(latencies, 99)
	}
	return rep, nil
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// loadQueries reads one query per line; for TSV lines the last field is the
// query text.
func loadQueries(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if i := strings.LastIndexByte(line, '\t'); i >= 0 {
			line = line[i+1:]
		}
		out = append(out, line)
	}
	return out, scanner.Err()
}
