// Command experiments regenerates the paper's evaluation tables on the
// synthetic TREC-like corpus.
//
// Usage:
//
//	experiments [-table all|1|2|3|4|sizes|43split|skipping|threshold|groupsize|compression]
//	            [-seed N] [-scale F] [-long N] [-short N]
//
// -scale multiplies the default corpus size (0.25 runs a quick smoke pass,
// 1.0 is the standard configuration used in EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"teraphim/internal/experiments"
	"teraphim/internal/trecsynth"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	table := fs.String("table", "all", "which table to regenerate")
	seed := fs.Int64("seed", 1998, "corpus generation seed")
	scale := fs.Float64("scale", 1.0, "corpus size multiplier")
	long := fs.Int("long", 0, "override number of long queries (0 = default)")
	short := fs.Int("short", 0, "override number of short queries (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := trecsynth.DefaultConfig()
	cfg.Seed = *seed
	for i := range cfg.Subs {
		cfg.Subs[i].NumDocs = int(float64(cfg.Subs[i].NumDocs) * *scale)
		if cfg.Subs[i].NumDocs < 1 {
			cfg.Subs[i].NumDocs = 1
		}
	}
	if *long > 0 {
		cfg.NumLongQueries = *long
	}
	if *short > 0 {
		cfg.NumShortQueries = *short
	}

	start := time.Now()
	fmt.Fprintf(w, "Building deployment (scale %.2f, seed %d)...\n", *scale, *seed)
	r, err := experiments.NewRunner(cfg)
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Fprintf(w, "Ready in %.1fs: %d documents, %d librarians, %d queries\n\n",
		time.Since(start).Seconds(), r.Receptionist().TotalDocs(),
		len(r.Receptionist().Librarians()), len(r.Corpus.Queries))

	type section struct {
		name string
		fn   func(io.Writer) error
	}
	sections := []section{
		{"1", r.Table1},
		{"2", r.Table2},
		{"3", r.Table3},
		{"4", r.Table4},
		{"sizes", r.Sizes},
		{"43split", r.Split43},
		{"skipping", r.Skipping},
		{"threshold", r.Threshold},
		{"groupsize", r.GroupSizeAblation},
		{"compression", r.CompressionAblation},
		{"fusion", r.Fusion},
		{"resources", r.ResourceScaling},
		{"freqsorted", r.FreqSorted},
		{"throughput", r.Throughput},
		{"quantized", r.QuantizedWeights},
	}
	ran := false
	for _, s := range sections {
		if *table != "all" && *table != s.name {
			continue
		}
		ran = true
		if err := s.fn(w); err != nil {
			return fmt.Errorf("table %s: %w", s.name, err)
		}
		fmt.Fprintln(w)
	}
	if !ran {
		return fmt.Errorf("unknown table %q", *table)
	}
	return nil
}
