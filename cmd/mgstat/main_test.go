package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"teraphim/internal/librarian"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

func buildStatCollection(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "col")
	lib, err := librarian.Build("stats", []store.Document{
		{Title: "d0", Text: "alpha alpha alpha beta"},
		{Title: "d1", Text: "alpha beta gamma"},
		{Title: "d2", Text: "alpha delta"},
	}, librarian.BuildOptions{
		Analyzer: textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := librarian.Save(dir, lib, librarian.SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStatReport(t *testing.T) {
	col := buildStatCollection(t)
	var buf bytes.Buffer
	if err := run(&buf, []string{"-col", col, "-top", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`collection "stats"`,
		"documents",
		"distinct terms",
		"bits/posting",
		"heaviest terms",
		"alpha",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// alpha appears in all 3 docs and must head the heavy list.
	idx := strings.Index(out, "heaviest terms")
	if !strings.Contains(out[idx:], "alpha") {
		t.Fatalf("alpha not in heaviest terms:\n%s", out)
	}
}

func TestStatValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil); err == nil {
		t.Fatal("missing -col: want error")
	}
	if err := run(&buf, []string{"-col", "/nonexistent"}); err == nil {
		t.Fatal("bad collection: want error")
	}
}
