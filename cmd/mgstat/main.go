// Command mgstat prints statistics of a built collection: sizes and
// compression rates, postings distribution, and the heaviest terms —
// the numbers behind the paper's storage discussion (§4) for any corpus.
//
// Usage:
//
//	mgstat -col collection/ [-top 10]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"teraphim/internal/librarian"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mgstat:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mgstat", flag.ContinueOnError)
	col := fs.String("col", "", "collection directory (required)")
	top := fs.Int("top", 10, "heaviest terms to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *col == "" {
		return fmt.Errorf("-col is required")
	}
	lib, err := librarian.Load(*col)
	if err != nil {
		return err
	}
	ix := lib.Engine().Index()
	st := lib.Store()

	fmt.Fprintf(w, "collection %q\n", lib.Name())
	fmt.Fprintf(w, "  documents          %12d\n", ix.NumDocs())
	fmt.Fprintf(w, "  distinct terms     %12d\n", ix.NumTerms())
	fmt.Fprintf(w, "  postings           %12d\n", ix.NumPostings())
	if ix.NumDocs() > 0 {
		fmt.Fprintf(w, "  postings/document  %12.1f\n", float64(ix.NumPostings())/float64(ix.NumDocs()))
	}

	fmt.Fprintf(w, "storage\n")
	fmt.Fprintf(w, "  raw text           %12d B\n", st.RawSize())
	fmt.Fprintf(w, "  compressed text    %12d B (%5.1f%%)\n", st.CompressedSize(), pct(st.CompressedSize(), st.RawSize()))
	fmt.Fprintf(w, "  inverted index     %12d B (%5.1f%% of text)\n", ix.SizeBytes(), pct(ix.SizeBytes(), st.RawSize()))
	fmt.Fprintf(w, "  dictionary         %12d B\n", ix.DictSizeBytes())
	if ix.NumPostings() > 0 {
		fmt.Fprintf(w, "  bits/posting       %12.2f\n", float64(ix.SizeBytes()*8)/float64(ix.NumPostings()))
	}

	// Postings-list length distribution: how skewed is the index?
	type termStat struct {
		term string
		ft   uint32
	}
	var stats []termStat
	hist := map[int]int{} // log2 bucket -> count
	ix.Terms(func(term string, ft uint32) bool {
		stats = append(stats, termStat{term, ft})
		bucket := 0
		if ft > 0 {
			bucket = int(math.Log2(float64(ft)))
		}
		hist[bucket]++
		return true
	})
	fmt.Fprintf(w, "list-length distribution (log2 buckets)\n")
	var buckets []int
	for b := range hist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		lo := 1 << b
		hi := 1<<(b+1) - 1
		fmt.Fprintf(w, "  f_t %7d–%-9d %8d terms\n", lo, hi, hist[b])
	}

	sort.Slice(stats, func(i, j int) bool {
		if stats[i].ft != stats[j].ft {
			return stats[i].ft > stats[j].ft
		}
		return stats[i].term < stats[j].term
	})
	if *top > len(stats) {
		*top = len(stats)
	}
	fmt.Fprintf(w, "heaviest terms\n")
	for _, ts := range stats[:*top] {
		fmt.Fprintf(w, "  %-24s f_t %8d\n", ts.term, ts.ft)
	}
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
