package main

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"teraphim/internal/librarian"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

func startFleet(t *testing.T) string {
	t.Helper()
	analyzer := textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming())
	var specs []string
	for name, docs := range map[string][]store.Document{
		"news": {
			{Title: "n0", Text: "election results dominated the news"},
			{Title: "n1", Text: "networks covered the election all night"},
		},
		"tech": {
			{Title: "t0", Text: "distributed networks replicate state"},
		},
	} {
		lib, err := librarian.Build(name, docs, librarian.BuildOptions{Analyzer: analyzer})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := librarian.Serve(lib, ln)
		t.Cleanup(func() { srv.Close() })
		specs = append(specs, name+"="+srv.Addr().String())
	}
	return strings.Join(specs, ",")
}

func TestInteractiveCVSession(t *testing.T) {
	libs := startFleet(t)
	var buf bytes.Buffer
	stdin := strings.NewReader("election networks\n\n")
	if err := run(&buf, stdin, []string{"-libs", libs, "-mode", "cv", "-k", "5", "-fetch", "-nostem", "-nostop"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "connected to 2 librarians") {
		t.Fatalf("no connection banner:\n%s", out)
	}
	if !strings.Contains(out, "merged vocabulary") {
		t.Fatalf("no CV setup output:\n%s", out)
	}
	if !strings.Contains(out, "answers from") || !strings.Contains(out, "news:") {
		t.Fatalf("no ranked answers:\n%s", out)
	}
}

func TestInteractiveBooleanSession(t *testing.T) {
	libs := startFleet(t)
	var buf bytes.Buffer
	stdin := strings.NewReader("election AND networks\n")
	if err := run(&buf, stdin, []string{"-libs", libs, "-mode", "cn", "-boolean", "-nostem", "-nostop"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "documents match across 2 librarians") {
		t.Fatalf("no Boolean result:\n%s", out)
	}
	if !strings.Contains(out, "news:1") {
		t.Fatalf("expected news:1 (election AND networks):\n%s", out)
	}
}

func TestReceptionistValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, strings.NewReader(""), nil); err == nil {
		t.Fatal("missing -libs: want error")
	}
	if err := run(&buf, strings.NewReader(""), []string{"-libs", "badspec"}); err == nil {
		t.Fatal("malformed spec: want error")
	}
	if err := run(&buf, strings.NewReader(""), []string{"-libs", "a=x", "-mode", "ci"}); err == nil {
		t.Fatal("unsupported mode: want error")
	}
	// Unreachable librarian.
	if err := run(&buf, strings.NewReader(""), []string{"-libs", "a=127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable librarian: want error")
	}
}
