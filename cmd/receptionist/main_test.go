package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

func startFleet(t *testing.T) string {
	t.Helper()
	analyzer := textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming())
	var specs []string
	for name, docs := range map[string][]store.Document{
		"news": {
			{Title: "n0", Text: "election results dominated the news"},
			{Title: "n1", Text: "networks covered the election all night"},
		},
		"tech": {
			{Title: "t0", Text: "distributed networks replicate state"},
		},
	} {
		lib, err := librarian.Build(name, docs, librarian.BuildOptions{Analyzer: analyzer})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := librarian.Serve(lib, ln)
		t.Cleanup(func() { srv.Close() })
		specs = append(specs, name+"="+srv.Addr().String())
	}
	return strings.Join(specs, ",")
}

func TestInteractiveCVSession(t *testing.T) {
	libs := startFleet(t)
	var buf bytes.Buffer
	stdin := strings.NewReader("election networks\n\n")
	if err := run(&buf, stdin, []string{"-libs", libs, "-mode", "cv", "-k", "5", "-fetch", "-nostem", "-nostop"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "connected to 2 librarians") {
		t.Fatalf("no connection banner:\n%s", out)
	}
	if !strings.Contains(out, "merged vocabulary") {
		t.Fatalf("no CV setup output:\n%s", out)
	}
	if !strings.Contains(out, "answers from") || !strings.Contains(out, "news:") {
		t.Fatalf("no ranked answers:\n%s", out)
	}
}

func TestInteractiveBooleanSession(t *testing.T) {
	libs := startFleet(t)
	var buf bytes.Buffer
	stdin := strings.NewReader("election AND networks\n")
	if err := run(&buf, stdin, []string{"-libs", libs, "-mode", "cn", "-boolean", "-nostem", "-nostop"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "documents match across 2 librarians") {
		t.Fatalf("no Boolean result:\n%s", out)
	}
	if !strings.Contains(out, "news:1") {
		t.Fatalf("expected news:1 (election AND networks):\n%s", out)
	}
}

// TestObsEndpointServesQueryMetrics runs an interactive session with -obs
// and scrapes /metrics while it is live: after one CV query the per-mode
// counter must read 1 in Prometheus text format.
func TestObsEndpointServesQueryMetrics(t *testing.T) {
	libs := startFleet(t)
	// Reserve a port for the obs endpoint so the test knows where to scrape.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	obsAddr := ln.Addr().String()
	ln.Close()

	stdinR, stdinW := io.Pipe()
	scraped := make(chan error, 1)
	go func() {
		defer stdinW.Close()
		if _, err := io.WriteString(stdinW, "election networks\n"); err != nil {
			scraped <- err
			return
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			body, err := scrapeOnce(obsAddr)
			if err == nil && strings.Contains(body, `teraphim_queries_total{mode="CV"} 1`) {
				if !strings.Contains(body, `teraphim_query_stage_seconds_count{stage="merge"} 1`) {
					scraped <- fmt.Errorf("no stage histogram in scrape:\n%s", body)
					return
				}
				scraped <- nil
				return
			}
			if time.Now().After(deadline) {
				scraped <- fmt.Errorf("query counter never reached 1 (last err %v):\n%s", err, body)
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	var buf bytes.Buffer
	if err := run(&buf, stdinR, []string{"-libs", libs, "-mode", "cv", "-k", "5",
		"-nostem", "-nostop", "-obs", obsAddr}); err != nil {
		t.Fatal(err)
	}
	if err := <-scraped; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "metrics and pprof on") {
		t.Fatalf("no obs banner:\n%s", buf.String())
	}
}

func scrapeOnce(addr string) (string, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return string(body), fmt.Errorf("content type %q", ct)
	}
	return string(body), nil
}

func TestReceptionistValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, strings.NewReader(""), nil); err == nil {
		t.Fatal("missing -libs: want error")
	}
	if err := run(&buf, strings.NewReader(""), []string{"-libs", "badspec"}); err == nil {
		t.Fatal("malformed spec: want error")
	}
	if err := run(&buf, strings.NewReader(""), []string{"-libs", "a=x", "-mode", "ci"}); err == nil {
		t.Fatal("unsupported mode: want error")
	}
	// Unreachable librarian.
	if err := run(&buf, strings.NewReader(""), []string{"-libs", "a=127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable librarian: want error")
	}
}
