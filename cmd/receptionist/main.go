// Command receptionist brokers ranked queries to running librarian servers
// under the CN, CV or CI methodology.
//
// Usage:
//
//	receptionist -libs AP=localhost:7001,FR=localhost:7002 [-mode cv] [-k 20] [-fetch]
//
// Repeating a librarian name declares replicas of its subcollection
// (-libs AP=h1:7001,AP=h2:7001 routes AP's exchanges across both endpoints,
// auto-named AP#0 and AP#1); -hedge 0.95 additionally races a second replica
// whenever an exchange outlives that latency quantile.
//
// Queries are read from stdin, one per line. CI mode additionally requires
// -groupdocs pointing at the documents so the grouped central index can be
// built (the offline preprocessing step); for in-process experimentation
// prefer cmd/experiments.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"teraphim/internal/core"
	"teraphim/internal/obs"
	"teraphim/internal/search"
	"teraphim/internal/simnet"
	"teraphim/internal/textproc"
)

func main() {
	if err := run(os.Stdout, os.Stdin, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "receptionist:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, stdin io.Reader, args []string) error {
	fs := flag.NewFlagSet("receptionist", flag.ContinueOnError)
	libs := fs.String("libs", "", "comma-separated name=host:port librarian list (required)")
	mode := fs.String("mode", "cv", "methodology: cn or cv")
	k := fs.Int("k", 20, "number of answers")
	fetch := fs.Bool("fetch", false, "retrieve and display document text")
	compressed := fs.Bool("compressed", true, "use compressed document transfer")
	boolean := fs.Bool("boolean", false, "evaluate queries as Boolean expressions (union across librarians)")
	noStem := fs.Bool("nostem", false, "disable stemming (must match how the collections were built)")
	noStop := fs.Bool("nostop", false, "disable stopword removal (must match how the collections were built)")
	timeout := fs.Duration("timeout", 0, "per-exchange deadline (0 = none)")
	retries := fs.Int("retries", 0, "extra attempts per librarian exchange after a transient failure")
	backoff := fs.Duration("backoff", 50*time.Millisecond, "base retry backoff, doubled per attempt")
	partial := fs.Bool("partial", false, "answer from surviving librarians when some fail")
	minLibs := fs.Int("minlibs", 0, "with -partial, minimum surviving librarians per query (implies -partial)")
	obsAddr := fs.String("obs", "", "serve Prometheus /metrics and pprof on this address (e.g. :9090; empty = off)")
	slowQuery := fs.Duration("slowquery", 0, "log queries slower than this with a per-stage breakdown (0 = off)")
	cache := fs.Int("cache", 0, "enable the result cache with this many entries (0 = off)")
	cacheBytes := fs.Int64("cachebytes", 0, "with -cache, approximate cache size bound in bytes (0 = default)")
	inflight := fs.Int("inflight", 0, "admission control: max concurrently evaluating queries (0 = unlimited)")
	queue := fs.Int("queue", 0, "with -inflight, max queries waiting for admission before shedding")
	queueWait := fs.Duration("queuewait", 0, "with -inflight, max time a query waits for admission (0 = until deadline)")
	topR := fs.Int("topr", 0, "collection selection: contact only the R librarians ranked most promising per query (0 = full fan-out)")
	hedge := fs.Float64("hedge", 0, "race a second replica when an exchange outlives this latency quantile, e.g. 0.95 (0 = off; needs replicated -libs)")
	evalName := fs.String("eval", "exact", "rank evaluation strategy: exact, maxscore or wand (rank-safe dynamic pruning)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *libs == "" {
		return fmt.Errorf("-libs is required")
	}
	evaluator, err := search.ParseEvaluator(*evalName)
	if err != nil {
		return err
	}
	var qmode core.Mode
	switch strings.ToLower(*mode) {
	case "cn":
		qmode = core.ModeCN
	case "cv":
		qmode = core.ModeCV
	default:
		return fmt.Errorf("unsupported mode %q (cn or cv; see cmd/experiments for ci)", *mode)
	}

	// A repeated name in -libs declares replicas: its addresses become
	// endpoints name#0, name#1, ... routed by the pool's replica router.
	dialer := simnet.TCPDialer{}
	var names []string
	addrs := map[string][]string{}
	for _, spec := range strings.Split(*libs, ",") {
		name, addr, found := strings.Cut(spec, "=")
		if !found {
			return fmt.Errorf("malformed librarian spec %q", spec)
		}
		if len(addrs[name]) == 0 {
			names = append(names, name)
		}
		addrs[name] = append(addrs[name], addr)
	}
	replicas := map[string][]string{}
	for _, name := range names {
		list := addrs[name]
		if len(list) == 1 {
			dialer[name] = list[0]
			continue
		}
		for i, addr := range list {
			ep := fmt.Sprintf("%s#%d", name, i)
			dialer[ep] = addr
			replicas[name] = append(replicas[name], ep)
		}
	}

	var analyzerOpts []textproc.Option
	if *noStem {
		analyzerOpts = append(analyzerOpts, textproc.WithoutStemming())
	}
	if *noStop {
		analyzerOpts = append(analyzerOpts, textproc.WithoutStopwords())
	}
	reg := obs.NewRegistry()
	cfg := core.Config{
		Analyzer:           textproc.NewAnalyzer(analyzerOpts...),
		Metrics:            reg,
		SlowQueryThreshold: *slowQuery,
	}
	if len(replicas) > 0 {
		cfg.Replicas = replicas
	}
	if *cache > 0 {
		cfg.Cache = &core.CacheConfig{MaxEntries: *cache, MaxBytes: *cacheBytes}
	}
	if *inflight > 0 {
		cfg.Admission = &core.AdmissionConfig{MaxInFlight: *inflight, MaxQueue: *queue, MaxWait: *queueWait}
	}
	recep, err := core.Connect(dialer, names, cfg)
	if err != nil {
		return err
	}
	defer recep.Close()
	if *obsAddr != "" {
		srv, err := obs.ListenAndServe(*obsAddr, reg)
		if err != nil {
			return fmt.Errorf("obs endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(w, "metrics and pprof on http://%s/\n", srv.Addr())
	}
	fmt.Fprintf(w, "connected to %d librarians, %d documents total\n",
		len(recep.Librarians()), recep.TotalDocs())
	for _, name := range recep.Librarians() {
		if eps := replicas[name]; len(eps) > 1 {
			fmt.Fprintf(w, "librarian %s: %d replicas (%s)\n", name, len(eps), strings.Join(eps, ", "))
		}
	}
	if *hedge > 0 {
		fmt.Fprintf(w, "hedging on: racing a second replica past the p%.0f exchange latency\n", *hedge*100)
	}

	// Selection ranks librarians from the merged vocabulary statistics, so
	// -topr needs SetupVocabulary even in CN mode.
	if qmode == core.ModeCV || *topR > 0 {
		if _, err := recep.SetupVocabulary(); err != nil {
			return err
		}
		terms, bytes := recep.VocabularySize()
		fmt.Fprintf(w, "merged vocabulary: %d terms (%d bytes)\n", terms, bytes)
	}
	if *topR > 0 {
		fmt.Fprintf(w, "collection selection on: top %d of %d librarians per query\n",
			*topR, len(recep.Librarians()))
	}
	if *fetch && *compressed {
		if _, err := recep.SetupModels(); err != nil {
			return err
		}
	}

	scanner := bufio.NewScanner(stdin)
	fmt.Fprint(w, "query> ")
	for scanner.Scan() {
		q := strings.TrimSpace(scanner.Text())
		if q == "" {
			fmt.Fprint(w, "query> ")
			continue
		}
		if *boolean {
			res, err := recep.Boolean(q)
			if err != nil {
				fmt.Fprintf(w, "error: %v\n", err)
			} else {
				fmt.Fprintf(w, "%d documents match across %d librarians\n",
					len(res.Answers), res.Trace.LibrariansAsked)
				show := res.Answers
				if len(show) > *k {
					show = show[:*k]
				}
				for _, a := range show {
					fmt.Fprintf(w, "  %s\n", a.Key())
				}
			}
			fmt.Fprint(w, "query> ")
			continue
		}
		res, err := recep.Query(qmode, q, *k, core.Options{
			Fetch:              *fetch,
			CompressedTransfer: *compressed,
			Timeout:            *timeout,
			Retries:            *retries,
			Backoff:            *backoff,
			AllowPartial:       *partial,
			MinLibrarians:      *minLibs,
			TopR:               *topR,
			HedgeAfter:         *hedge,
			Evaluator:          evaluator,
		})
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			fmt.Fprint(w, "query> ")
			continue
		}
		if res.Trace.CacheHit {
			fmt.Fprintf(w, "%d answers (cached; no librarian round trips)\n", len(res.Answers))
		} else if res.Trace.LibrariansSelected > 0 {
			fmt.Fprintf(w, "%d answers from the %d selected librarians (%d candidates merged, %d bytes moved)\n",
				len(res.Answers), res.Trace.LibrariansSelected,
				res.Trace.MergeCandidates, res.Trace.BytesTransferred(0))
		} else {
			fmt.Fprintf(w, "%d answers from %d librarians (%d candidates merged, %d bytes moved)\n",
				len(res.Answers), res.Trace.LibrariansAsked,
				res.Trace.MergeCandidates, res.Trace.BytesTransferred(0))
		}
		if res.Trace.Degraded {
			fmt.Fprintf(w, "DEGRADED: answered without %d librarian(s)\n", len(res.Trace.Failures))
			for _, f := range res.Trace.Failures {
				fmt.Fprintf(w, "  %s failed in %s phase after %d attempt(s): %v\n",
					f.Librarian, f.Phase, f.Attempts, f.Err)
			}
		}
		if retried := res.Trace.RetryAttempts(); retried > 0 {
			fmt.Fprintf(w, "recovered after %d retried exchange(s)\n", retried)
		}
		if res.Trace.Hedges > 0 {
			fmt.Fprintf(w, "hedged %d exchange(s), %d won the race\n", res.Trace.Hedges, res.Trace.HedgeWins)
		}
		for i, a := range res.Answers {
			fmt.Fprintf(w, "%3d. %-24s %.4f", i+1, a.Key(), a.Score)
			if a.Title != "" {
				fmt.Fprintf(w, "  %s", a.Title)
			}
			fmt.Fprintln(w)
			if *fetch {
				fmt.Fprintf(w, "     %s\n", firstLine(a.Text))
			}
		}
		fmt.Fprint(w, "query> ")
	}
	return scanner.Err()
}

func firstLine(text string) string {
	if i := strings.IndexByte(text, '\n'); i >= 0 {
		text = text[:i]
	}
	if len(text) > 120 {
		text = text[:120] + "..."
	}
	return text
}
