package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCorpus(t *testing.T, dir string, docs map[string]string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, text := range docs {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildFromDirectory(t *testing.T) {
	in := filepath.Join(t.TempDir(), "docs")
	out := filepath.Join(t.TempDir(), "col")
	writeCorpus(t, in, map[string]string{
		"a.txt":   "the quick brown fox",
		"b.txt":   "jumps over the lazy dog",
		"ignored": "not a txt file",
	})
	var buf bytes.Buffer
	if err := run(&buf, []string{"-in", in, "-out", out, "-name", "test"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `built "test": 2 docs`) {
		t.Fatalf("output: %s", buf.String())
	}
	for _, f := range []string{"collection.conf", "index.tpix", "store.tpst"} {
		if _, err := os.Stat(filepath.Join(out, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestBuildValidatesFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil); err == nil {
		t.Fatal("missing flags: want error")
	}
	if err := run(&buf, []string{"-in", t.TempDir(), "-out", t.TempDir()}); err == nil {
		t.Fatal("empty input dir: want error")
	}
	if err := run(&buf, []string{"-in", "/nonexistent", "-out", t.TempDir()}); err == nil {
		t.Fatal("nonexistent input dir: want error")
	}
}

func TestBuildDefaultNameAndOptions(t *testing.T) {
	in := filepath.Join(t.TempDir(), "mycollection")
	out := filepath.Join(t.TempDir(), "col")
	writeCorpus(t, in, map[string]string{"a.txt": "some words here"})
	var buf bytes.Buffer
	if err := run(&buf, []string{"-in", in, "-out", out, "-nostem", "-nostop"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `built "mycollection"`) {
		t.Fatalf("default name not used: %s", buf.String())
	}
	conf, err := os.ReadFile(filepath.Join(out, "collection.conf"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(conf), "stemming=false") || !strings.Contains(string(conf), "stopwords=false") {
		t.Fatalf("conf does not record analyzer options: %s", conf)
	}
}
