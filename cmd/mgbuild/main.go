// Command mgbuild builds a TERAPHIM collection (compressed inverted index +
// compressed document store) from a directory of plain-text files, one
// document per file.
//
// Usage:
//
//	mgbuild -in documents/ -out collection/ [-name NAME] [-nostem] [-nostop]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"teraphim/internal/librarian"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mgbuild:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mgbuild", flag.ContinueOnError)
	in := fs.String("in", "", "directory of input text files (required)")
	out := fs.String("out", "", "output collection directory (required)")
	name := fs.String("name", "", "collection name (default: basename of -in)")
	noStem := fs.Bool("nostem", false, "disable Porter stemming")
	noStop := fs.Bool("nostop", false, "disable stopword removal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	if *name == "" {
		*name = filepath.Base(filepath.Clean(*in))
	}

	docs, err := readDocs(*in)
	if err != nil {
		return err
	}
	if len(docs) == 0 {
		return fmt.Errorf("no .txt documents in %s", *in)
	}

	var opts []textproc.Option
	if *noStem {
		opts = append(opts, textproc.WithoutStemming())
	}
	if *noStop {
		opts = append(opts, textproc.WithoutStopwords())
	}
	lib, err := librarian.Build(*name, docs, librarian.BuildOptions{Analyzer: textproc.NewAnalyzer(opts...)})
	if err != nil {
		return err
	}
	if err := librarian.Save(*out, lib, librarian.SaveOptions{Stopwords: !*noStop, Stemming: !*noStem}); err != nil {
		return err
	}
	ix := lib.Engine().Index()
	fmt.Fprintf(w, "built %q: %d docs, %d terms, %d postings\n",
		*name, ix.NumDocs(), ix.NumTerms(), ix.NumPostings())
	fmt.Fprintf(w, "index %d B, store %d B (raw text %d B)\n",
		ix.SizeBytes(), lib.Store().CompressedSize(), lib.Store().RawSize())
	return nil
}

func readDocs(dir string) ([]store.Document, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".txt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	docs := make([]store.Document, 0, len(names))
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		docs = append(docs, store.Document{
			ID:    uint32(len(docs)),
			Title: strings.TrimSuffix(n, ".txt"),
			Text:  string(data),
		})
	}
	return docs, nil
}
