// Command librarian serves a collection built by mgbuild over TCP, speaking
// the TERAPHIM wire protocol. One librarian per subcollection; point a
// receptionist at several of them.
//
// Usage:
//
//	librarian -col collection/ -listen :7001
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"teraphim/internal/librarian"
	"teraphim/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "librarian:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("librarian", flag.ContinueOnError)
	col := fs.String("col", "", "collection directory (required)")
	listen := fs.String("listen", ":7001", "listen address")
	obsAddr := fs.String("obs", "", "serve Prometheus /metrics and pprof on this address (e.g. :9091; empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *col == "" {
		return fmt.Errorf("-col is required")
	}
	lib, err := librarian.Load(*col)
	if err != nil {
		return err
	}
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		lib.Instrument(reg)
		osrv, err := obs.ListenAndServe(*obsAddr, reg)
		if err != nil {
			return fmt.Errorf("obs endpoint: %w", err)
		}
		defer osrv.Close()
		fmt.Printf("metrics and pprof on http://%s/\n", osrv.Addr())
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := librarian.Serve(lib, ln)
	fmt.Printf("librarian %q serving %d documents on %s\n",
		lib.Name(), lib.Engine().Index().NumDocs(), srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return srv.Close()
}
