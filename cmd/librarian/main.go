// Command librarian serves a collection built by mgbuild over TCP, speaking
// the TERAPHIM wire protocol. One librarian per subcollection; point a
// receptionist at several of them.
//
// Usage:
//
//	librarian -col collection/ -listen :7001
//
// -listen accepts a comma-separated address list: every address serves the
// same collection from one process, which is how a receptionist's replicated
// -libs spec (AP=host:7001,AP=host:7002) can be backed without duplicating
// the index on disk.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"teraphim/internal/librarian"
	"teraphim/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "librarian:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("librarian", flag.ContinueOnError)
	col := fs.String("col", "", "collection directory (required)")
	listen := fs.String("listen", ":7001", "listen address, or a comma-separated list to serve the collection on several (replica endpoints)")
	obsAddr := fs.String("obs", "", "serve Prometheus /metrics and pprof on this address (e.g. :9091; empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *col == "" {
		return fmt.Errorf("-col is required")
	}
	lib, err := librarian.Load(*col)
	if err != nil {
		return err
	}
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		lib.Instrument(reg)
		osrv, err := obs.ListenAndServe(*obsAddr, reg)
		if err != nil {
			return fmt.Errorf("obs endpoint: %w", err)
		}
		defer osrv.Close()
		fmt.Printf("metrics and pprof on http://%s/\n", osrv.Addr())
	}
	var srvs []*librarian.Server
	for _, addr := range strings.Split(*listen, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			for _, s := range srvs {
				_ = s.Close()
			}
			return err
		}
		srv := librarian.Serve(lib, ln)
		srvs = append(srvs, srv)
		fmt.Printf("librarian %q serving %d documents on %s\n",
			lib.Name(), lib.Engine().Index().NumDocs(), srv.Addr())
	}
	if len(srvs) == 0 {
		return fmt.Errorf("-listen names no addresses")
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	var first error
	for _, srv := range srvs {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
