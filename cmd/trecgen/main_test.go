package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateToDisk(t *testing.T) {
	out := filepath.Join(t.TempDir(), "corpus")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-out", out, "-scale", "0.01"}); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"AP", "FR", "WSJ", "ZIFF"} {
		entries, err := os.ReadDir(filepath.Join(out, sub))
		if err != nil {
			t.Fatalf("subcollection %s: %v", sub, err)
		}
		if len(entries) == 0 {
			t.Fatalf("subcollection %s empty", sub)
		}
	}
	queries, err := os.ReadFile(filepath.Join(out, "queries.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(queries)), "\n")
	if len(lines) != 99 {
		t.Fatalf("queries.tsv has %d lines, want 99", len(lines))
	}
	for _, line := range lines[:3] {
		if parts := strings.SplitN(line, "\t", 3); len(parts) != 3 {
			t.Fatalf("malformed query line %q", line)
		}
	}
	qrels, err := os.ReadFile(filepath.Join(out, "qrels.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qrels) == 0 {
		t.Fatal("qrels.tsv empty")
	}
	if !strings.Contains(buf.String(), "99 queries") {
		t.Fatalf("summary: %s", buf.String())
	}
}

func TestGenerateRequiresOut(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil); err == nil {
		t.Fatal("missing -out: want error")
	}
}

func TestGenerateDeterministicOnDisk(t *testing.T) {
	out1 := filepath.Join(t.TempDir(), "c1")
	out2 := filepath.Join(t.TempDir(), "c2")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-out", out1, "-scale", "0.01", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, []string{"-out", out2, "-scale", "0.01", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	d1, err := os.ReadFile(filepath.Join(out1, "AP", "000000.txt"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := os.ReadFile(filepath.Join(out2, "AP", "000000.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("same seed produced different corpora")
	}
}
