// Command trecgen writes the synthetic TREC-like corpus to disk: one
// directory of .txt files per subcollection (ready for mgbuild), plus the
// query sets and relevance judgements in TREC-style flat files.
//
// Usage:
//
//	trecgen -out corpus/ [-seed 1998] [-scale 1.0]
//
// Output layout:
//
//	corpus/AP/000000.txt ...      one file per document
//	corpus/queries.tsv            id<TAB>kind<TAB>text
//	corpus/qrels.tsv              queryid<TAB>dockey
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"teraphim/internal/trecsynth"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trecgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("trecgen", flag.ContinueOnError)
	out := fs.String("out", "", "output directory (required)")
	seed := fs.Int64("seed", 1998, "generation seed")
	scale := fs.Float64("scale", 1.0, "corpus size multiplier")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	cfg := trecsynth.DefaultConfig()
	cfg.Seed = *seed
	for i := range cfg.Subs {
		cfg.Subs[i].NumDocs = int(float64(cfg.Subs[i].NumDocs) * *scale)
		if cfg.Subs[i].NumDocs < 1 {
			cfg.Subs[i].NumDocs = 1
		}
	}
	corpus, err := trecsynth.Generate(cfg)
	if err != nil {
		return err
	}

	total := 0
	for _, sub := range corpus.Subcollections {
		dir := filepath.Join(*out, sub.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, d := range sub.Docs {
			path := filepath.Join(dir, fmt.Sprintf("%06d.txt", d.ID))
			if err := os.WriteFile(path, []byte(d.Text), 0o644); err != nil {
				return err
			}
		}
		total += len(sub.Docs)
		fmt.Fprintf(w, "wrote %s: %d documents\n", dir, len(sub.Docs))
	}

	var queries strings.Builder
	for _, q := range corpus.Queries {
		fmt.Fprintf(&queries, "%s\t%s\t%s\n", q.ID, q.Kind, q.Text)
	}
	if err := os.WriteFile(filepath.Join(*out, "queries.tsv"), []byte(queries.String()), 0o644); err != nil {
		return err
	}

	var qrels strings.Builder
	judged := 0
	for _, qid := range corpus.Qrels.Queries() {
		for _, sub := range corpus.Subcollections {
			for _, d := range sub.Docs {
				key := trecsynth.DocKey(sub.Name, d.ID)
				if corpus.Qrels.IsRelevant(qid, key) {
					fmt.Fprintf(&qrels, "%s\t%s\n", qid, key)
					judged++
				}
			}
		}
	}
	if err := os.WriteFile(filepath.Join(*out, "qrels.tsv"), []byte(qrels.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %d documents, %d queries, %d relevance judgements\n",
		total, len(corpus.Queries), judged)
	return nil
}
