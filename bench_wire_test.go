package teraphim

// BenchmarkWireThroughput measures what the wire-efficiency layers buy on a
// link where round trips dominate: a simulated WAN (3ms propagation per
// direction) with a deliberately tight pool (MaxConnsPerLibrarian = 2) and
// 16 concurrent clients.
//
//   - wire=seed: the pre-feature framing — one exclusive connection per
//     in-flight exchange, so 16 clients contend for 2 connections.
//   - wire=pipelined: tagged frames multiplex the same 2 connections;
//     round trips per query are unchanged but they overlap, so throughput
//     rises without any new connections.
//   - wire=batched: rank queries from concurrent clients additionally
//     coalesce into one frame per librarian inside Options.BatchWindow,
//     cutting round trips per query itself.
//
// Each cell reports queries/sec, wire round-trips/query and bytes/query
// (from the pool's teraphim_wire_* counters), plus overlap@10 against the
// seed wire's answers for a fixed probe set — the speedups must not move a
// single result.
//
// Run
//
//	go test -bench=WireThroughput -run='^$'
//
// `make bench-wire` sets WIRE_BENCH_RECORD and regenerates BENCH_wire.json
// (the smoke run in `make verify` leaves the recorded numbers alone).

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/simnet"
	"teraphim/internal/trecsynth"
)

const (
	wireBenchClients = 16
	wireBenchConns   = 2
	wireBenchLatency = 3 * time.Millisecond
	wireBenchWindow  = time.Millisecond
)

// wireBenchFleet is one freshly built deployment on the shaped WAN link.
type wireBenchFleet struct {
	pool    *Pool
	names   []string
	queries []string
}

func newWireBenchFleet(b *testing.B, features WireFeatures) *wireBenchFleet {
	b.Helper()
	corpus, err := trecsynth.Generate(trecsynth.SkewedConfig(4, 150))
	if err != nil {
		b.Fatal(err)
	}
	f := &wireBenchFleet{}
	dialer := librarian.NewInProcessDialer(nil, simnet.LinkConfig{})
	link := LinkConfig{Latency: wireBenchLatency}
	for _, sub := range corpus.Subcollections {
		lib, err := librarian.Build(sub.Name, sub.Docs, librarian.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		dialer.AddEndpoint(sub.Name, lib, link)
		f.names = append(f.names, sub.Name)
	}
	pool, err := ConnectPool(dialer, f.names, ReceptionistConfig{
		MaxConnsPerLibrarian: wireBenchConns,
		WireFeatures:         features,
	})
	if err != nil {
		b.Fatal(err)
	}
	f.pool = pool
	b.Cleanup(func() { pool.Close() })
	for _, q := range corpus.QueriesOf(trecsynth.ShortQuery) {
		f.queries = append(f.queries, q.Text)
	}
	return f
}

// wireBenchRow is one cell of BENCH_wire.json.
type wireBenchRow struct {
	Wire          string  `json:"wire"`
	Clients       int     `json:"clients"`
	MaxConns      int     `json:"max_conns_per_librarian"`
	LinkLatencyMs float64 `json:"link_latency_ms"`
	BatchWindowMs float64 `json:"batch_window_ms"`
	Queries       int     `json:"queries"`
	Seconds       float64 `json:"seconds"`
	QueriesSec    float64 `json:"queries_per_sec"`
	RTPerQuery    float64 `json:"round_trips_per_query"`
	BytesPerQuery float64 `json:"bytes_per_query"`
	OverlapAt10   float64 `json:"overlap_at_10_vs_seed"`
}

// wireBenchProbe runs the fixed probe set untimed and returns each query's
// top-10 answer keys, for the overlap@10 comparison across cells.
func wireBenchProbe(b *testing.B, f *wireBenchFleet, opts Options) [][]string {
	b.Helper()
	probes := f.queries
	if len(probes) > 8 {
		probes = probes[:8]
	}
	tops := make([][]string, len(probes))
	for i, q := range probes {
		res, err := f.pool.Query(ModeCN, q, 10, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range res.Answers {
			tops[i] = append(tops[i], a.Key())
		}
	}
	return tops
}

func overlapAt10(ref, got [][]string) float64 {
	if len(ref) == 0 {
		return 0
	}
	var total float64
	for i := range ref {
		seen := make(map[string]bool, len(ref[i]))
		for _, k := range ref[i] {
			seen[k] = true
		}
		hits := 0
		for _, k := range got[i] {
			if seen[k] {
				hits++
			}
		}
		denom := len(ref[i])
		if denom == 0 {
			total++
			continue
		}
		total += float64(hits) / float64(denom)
	}
	return total / float64(len(ref))
}

func BenchmarkWireThroughput(b *testing.B) {
	rows := make(map[string]wireBenchRow)
	var seedTops [][]string

	scenarios := []struct {
		name     string
		features WireFeatures
		window   time.Duration
	}{
		{name: "wire=seed", features: FeatureNone},
		{name: "wire=pipelined"},
		{name: "wire=batched", window: wireBenchWindow},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			f := newWireBenchFleet(b, sc.features)
			opts := Options{BatchWindow: sc.window}
			// Untimed warmup establishes and negotiates the connections.
			for _, q := range f.queries[:4] {
				if _, err := f.pool.Query(ModeCN, q, 10, Options{}); err != nil {
					b.Fatal(err)
				}
			}
			m := f.pool.Metrics()
			rt0, in0, out0 := m.WireRoundTrips(), m.WireBytesIn(), m.WireBytesOut()
			work := make(chan int)
			errs := make(chan error, wireBenchClients)
			var wg sync.WaitGroup
			b.ResetTimer()
			for c := 0; c < wireBenchClients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					sess := f.pool.Session()
					for i := range work {
						q := f.queries[i%len(f.queries)]
						if _, err := sess.Query(ModeCN, q, 10, opts); err != nil {
							errs <- fmt.Errorf("query %d (%q): %w", i, q, err)
							return
						}
					}
					errs <- nil
				}()
			}
			for i := 0; i < b.N; i++ {
				work <- i
			}
			close(work)
			wg.Wait()
			b.StopTimer()
			close(errs)
			for err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
			secs := b.Elapsed().Seconds()
			var qps float64
			if secs > 0 {
				qps = float64(b.N) / secs
			}
			rtPerQ := float64(m.WireRoundTrips()-rt0) / float64(b.N)
			bytesPerQ := float64(m.WireBytesIn()-in0+m.WireBytesOut()-out0) / float64(b.N)
			tops := wireBenchProbe(b, f, opts)
			if sc.name == "wire=seed" {
				seedTops = tops
			}
			overlap := overlapAt10(seedTops, tops)
			b.ReportMetric(qps, "queries/sec")
			b.ReportMetric(rtPerQ, "rt/query")
			b.ReportMetric(bytesPerQ, "bytes/query")
			rows[sc.name] = wireBenchRow{
				Wire:          sc.name[len("wire="):],
				Clients:       wireBenchClients,
				MaxConns:      wireBenchConns,
				LinkLatencyMs: float64(wireBenchLatency) / 1e6,
				BatchWindowMs: float64(sc.window) / 1e6,
				Queries:       b.N,
				Seconds:       secs,
				QueriesSec:    qps,
				RTPerQuery:    rtPerQ,
				BytesPerQuery: bytesPerQ,
				OverlapAt10:   overlap,
			}
		})
	}
	if os.Getenv("WIRE_BENCH_RECORD") == "" || len(rows) == 0 {
		return
	}
	out := make([]wireBenchRow, 0, len(rows))
	for _, sc := range scenarios {
		if r, ok := rows[sc.name]; ok {
			out = append(out, r)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_wire.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_wire.json (%d rows)", len(out))
}
