// Pruned retrieval: the paper's §5 future-work direction — a
// frequency-sorted inverted file with per-query thresholding (Persin,
// Zobel & Sacks-Davis). The example builds both index organisations over
// one synthetic subcollection, then sweeps the pruning thresholds and
// shows decoded postings falling while the top answers barely move.
//
//	go run ./examples/pruned
package main

import (
	"fmt"
	"log"

	"teraphim"
	"teraphim/internal/trecsynth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := teraphim.DefaultCorpusConfig()
	cfg.Subs = []trecsynth.SubSpec{{Name: "AP", NumDocs: 1500}}
	cfg.VocabSize = 4000
	cfg.NumTopics = 12
	cfg.NumShortQueries = 3
	cfg.NumLongQueries = 0
	corpus, err := teraphim.GenerateCorpus(cfg)
	if err != nil {
		return err
	}

	analyzer := teraphim.NewAnalyzer(teraphim.WithoutStopwords(), teraphim.WithoutStemming())
	lib, err := teraphim.BuildLibrarianWith("AP", corpus.Subcollections[0].Docs,
		teraphim.BuildOptions{Analyzer: analyzer})
	if err != nil {
		return err
	}
	fs, err := teraphim.BuildFreqSorted(lib.Engine())
	if err != nil {
		return err
	}
	pruned := teraphim.NewPrunedEngine(fs, analyzer)
	fmt.Printf("document-sorted index: %d bytes; frequency-sorted: %d bytes\n\n",
		lib.Engine().Index().SizeBytes(), fs.SizeBytes())

	query := corpus.QueriesOf(trecsynth.ShortQuery)[0].Text
	fmt.Printf("query: %.60s...\n\n", query)
	fmt.Printf("%-28s %16s %22s\n", "thresholds (insert/add)", "postings read", "top-5 documents")
	var reference []teraphim.SearchResult
	for _, th := range []teraphim.Thresholds{
		{},
		{Insert: 0.30, Add: 0.20},
		{Insert: 0.50, Add: 0.40},
	} {
		ranking, err := pruned.Rank(query, 5, th)
		results, stats := ranking.Results, ranking.Stats
		if err != nil {
			return err
		}
		if reference == nil {
			reference = results
		}
		kept := 0
		for _, r := range results {
			for _, ref := range reference {
				if r.Doc == ref.Doc {
					kept++
					break
				}
			}
		}
		label := "exact (0/0)"
		if th.Insert > 0 {
			label = fmt.Sprintf("%.2f / %.2f", th.Insert, th.Add)
		}
		fmt.Printf("%-28s %16d %18d/5 kept\n", label, stats.PostingsDecoded, kept)
	}
	fmt.Println("\nThresholding reads a fraction of the index; the high-precision head of")
	fmt.Println("the ranking survives because top documents owe their scores to")
	fmt.Println("high-frequency matches, which frequency-sorted lists surface first.")
	return nil
}
