// WAN simulation: the paper's wide-area deployment — librarians in
// Canberra, Brisbane, Hamilton and Tel Aviv, receptionist in Melbourne —
// run in-process with Table 2's measured round-trip times shaped onto the
// links (scaled 20x so the demo finishes quickly), plus the analytic cost
// model's view of the same queries.
//
//	go run ./examples/wansim
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"teraphim"
	"teraphim/internal/core"
	"teraphim/internal/costmodel"
	"teraphim/internal/experiments"
	"teraphim/internal/trecsynth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small synthetic corpus (the full experiment uses cmd/experiments).
	cfg := teraphim.DefaultCorpusConfig()
	cfg.Subs = []trecsynth.SubSpec{
		{Name: "AP", NumDocs: 260},   // Brisbane
		{Name: "FR", NumDocs: 170},   // Hamilton (Waikato)
		{Name: "WSJ", NumDocs: 240},  // Tel Aviv
		{Name: "ZIFF", NumDocs: 200}, // Canberra
	}
	cfg.VocabSize = 4000
	cfg.NumTopics = 16
	cfg.NumShortQueries = 4
	cfg.NumLongQueries = 0

	r, err := experiments.NewRunner(cfg)
	if err != nil {
		return err
	}
	defer r.Close()

	fmt.Println("WAN links (Table 2 of the paper):")
	for name, rtt := range costmodel.WANSites {
		fmt.Printf("  %-5s %2d hops, %.2fs ping\n", name, costmodel.WANHops[name], rtt.Seconds())
	}

	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	fmt.Printf("\nEvaluating %d short queries under CV, replayed against each configuration:\n\n", len(queries))
	_, traces, err := r.Run(experiments.RunSpec{Label: "CV", Mode: core.ModeCV}, queries, 20,
		core.Options{Fetch: true, CompressedTransfer: true})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %10s %10s\n", "config", "rank (s)", "fetch (s)", "total (s)")
	for _, c := range costmodel.AllConfigs() {
		var rank, fetch time.Duration
		for _, tr := range traces {
			b, err := costmodel.Estimate(c, tr)
			if err != nil {
				return err
			}
			rank += b.Rank
			fetch += b.Fetch
		}
		n := time.Duration(len(traces))
		fmt.Printf("%-12s %10.3f %10.3f %10.3f\n", c.Name,
			(rank / n).Seconds(), (fetch / n).Seconds(), ((rank + fetch) / n).Seconds())
	}

	// And a wall-clock taste of the same thing: real shaped links, scaled
	// 20x so the slowest (Tel Aviv, 1.04s RTT) answers in ~50 ms.
	fmt.Println("\nWall-clock run over delay-shaped in-process links (delays / 20):")
	var libs []*teraphim.Librarian
	analyzer := teraphim.NewAnalyzer(teraphim.WithoutStopwords(), teraphim.WithoutStemming())
	var names []string
	for _, sub := range r.Corpus.Subcollections {
		lib, err := teraphim.BuildLibrarianWith(sub.Name, sub.Docs, teraphim.BuildOptions{Analyzer: analyzer})
		if err != nil {
			return err
		}
		libs = append(libs, lib)
		names = append(names, sub.Name)
	}
	dialer := teraphim.NewInProcessDialer(libs, teraphim.LinkConfig{TimeScale: 20})
	for name, rtt := range costmodel.WANSites {
		if err := dialer.SetLink(name, teraphim.LinkConfig{
			Latency:   rtt / 2, // one-way
			Bandwidth: 64 << 10,
			TimeScale: 20,
		}); err != nil {
			return err
		}
	}
	recep, err := teraphim.ConnectReceptionist(dialer, names, teraphim.ReceptionistConfig{Analyzer: analyzer})
	if err != nil {
		return err
	}
	defer func() {
		recep.Close()
		dialer.Wait()
	}()
	if _, err := recep.SetupVocabulary(); err != nil {
		return err
	}
	for _, q := range queries[:2] {
		start := time.Now()
		res, err := recep.Query(teraphim.ModeCV, q.Text, 5, teraphim.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("  query %s: %d answers in %v (x20 ≈ %.2fs real WAN)\n",
			q.ID, len(res.Answers), time.Since(start).Round(time.Millisecond),
			(time.Since(start) * 20).Seconds())
	}
	fmt.Println("\nAs the paper found: wide-area response time is dominated by link latency,")
	fmt.Println("not by computation — handshaking must be kept to an absolute minimum.")

	// That remedy is a wire-level lever here: tagged-frame pipelining is
	// negotiated by default, and Options.BatchWindow coalesces concurrent
	// clients' queries to the same librarian into one round trip. Same
	// fleet and links, eight concurrent clients, seed framing vs batched.
	fmt.Println("\nWire efficiency: 8 concurrent clients over the same WAN links:")
	for _, wire := range []struct {
		label    string
		features teraphim.WireFeatures
		window   time.Duration
	}{
		{label: "seed framing", features: teraphim.FeatureNone},
		{label: "pipelined + 5ms batch window", window: 5 * time.Millisecond},
	} {
		pool, err := teraphim.ConnectPool(dialer, names, teraphim.ReceptionistConfig{
			Analyzer:             analyzer,
			MaxConnsPerLibrarian: 2,
			WireFeatures:         wire.features,
		})
		if err != nil {
			return err
		}
		if _, err := pool.SetupVocabulary(); err != nil {
			pool.Close()
			return err
		}
		m := pool.Metrics()
		rt0 := m.WireRoundTrips()
		const wireClients = 8
		errs := make(chan error, wireClients)
		start := time.Now()
		for c := 0; c < wireClients; c++ {
			go func(c int) {
				sess := pool.Session()
				for _, q := range queries {
					if _, err := sess.Query(teraphim.ModeCV, q.Text, 5,
						teraphim.Options{BatchWindow: wire.window}); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(c)
		}
		for c := 0; c < wireClients; c++ {
			if err := <-errs; err != nil {
				pool.Close()
				return err
			}
		}
		elapsed := time.Since(start)
		done := wireClients * len(queries)
		fmt.Printf("  %-28s %2d queries in %7v, %4.1f wire round trips/query\n",
			wire.label, done, elapsed.Round(time.Millisecond),
			float64(m.WireRoundTrips()-rt0)/float64(done))
		pool.Close()
	}

	// On a real WAN, sites also disappear: the paper's Tel Aviv link was the
	// slowest and flakiest. Demonstrate degraded operation — WSJ answers its
	// setup exchanges and then drops off the network for good; with
	// AllowPartial the receptionist retries, gives up, and still answers the
	// query from the three surviving sites.
	fmt.Println("\nDegraded operation: the Tel Aviv librarian (WSJ) dies after setup:")
	flaky := &flakySite{inner: dialer, site: "WSJ", writesLeft: 2} // Hello + vocabulary
	recep2, err := teraphim.ConnectReceptionist(flaky, names, teraphim.ReceptionistConfig{Analyzer: analyzer})
	if err != nil {
		return err
	}
	defer recep2.Close()
	if _, err := recep2.SetupVocabulary(); err != nil {
		return err
	}
	res, err := recep2.Query(teraphim.ModeCV, queries[0].Text, 5, teraphim.Options{
		Retries:      1,
		Backoff:      10 * time.Millisecond,
		AllowPartial: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  query %s: %d answers from the survivors (degraded=%v)\n",
		queries[0].ID, len(res.Answers), res.Trace.Degraded)
	for _, f := range res.Trace.Failures {
		fmt.Printf("  lost %s in the %s phase after %d attempt(s): %v\n",
			f.Librarian, f.Phase, f.Attempts, f.Err)
	}
	return nil
}

// flakySite fails one site mid-session: its first connection permits
// writesLeft writes (enough for the setup exchanges) before the link drops,
// and every redial is refused.
type flakySite struct {
	inner teraphim.Dialer
	site  string
	// writesLeft counts protocol messages the first connection will accept;
	// dialed tracks whether the one doomed connection was already handed out.
	writesLeft int
	dialed     bool
}

func (f *flakySite) Dial(name string) (net.Conn, error) {
	if name != f.site {
		return f.inner.Dial(name)
	}
	if f.dialed {
		return nil, errors.New("no route to host")
	}
	f.dialed = true
	conn, err := f.inner.Dial(name)
	if err != nil {
		return nil, err
	}
	return &dyingConn{Conn: conn, writesLeft: f.writesLeft}, nil
}

// dyingConn forwards writesLeft whole messages, then fails every write —
// each protocol.WriteMessage issues exactly one Write call.
type dyingConn struct {
	net.Conn
	writesLeft int
}

func (c *dyingConn) Write(p []byte) (int, error) {
	if c.writesLeft <= 0 {
		return 0, errors.New("link down")
	}
	c.writesLeft--
	return c.Conn.Write(p)
}
