// Collection selection: the extension the paper's analysis points to —
// "net savings are possible only if, given a query, it can be reliably
// determined that many of the subcollections can be neglected." A CV
// receptionist already holds every subcollection's vocabulary, so it can
// rank librarians by a GlOSS-style goodness score and query only the most
// promising ones.
//
// This example splits a synthetic corpus into 12 subcollections, then
// sweeps "query only the top-n librarians" from 1 to 12 and reports how
// much of the full-fleet answer quality survives at each n — together with
// the work saved.
//
// The library now does this natively: Options.TopR applies CORI-style
// selection inside the receptionist (see the README's "Collection
// selection" section). This example keeps the hand-rolled client-side
// variant to show the mechanics.
//
//	go run ./examples/selection
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	"teraphim"
	"teraphim/internal/trecsynth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := teraphim.DefaultCorpusConfig()
	cfg.Subs = nil
	for i := 0; i < 12; i++ {
		cfg.Subs = append(cfg.Subs, trecsynth.SubSpec{Name: fmt.Sprintf("S%02d", i), NumDocs: 150})
	}
	cfg.VocabSize = 5000
	cfg.NumTopics = 24
	cfg.NumShortQueries = 10
	cfg.NumLongQueries = 0
	corpus, err := teraphim.GenerateCorpus(cfg)
	if err != nil {
		return err
	}

	analyzer := teraphim.NewAnalyzer(teraphim.WithoutStopwords(), teraphim.WithoutStemming())
	var libs []*teraphim.Librarian
	var names []string
	// Keep each librarian's vocabulary for selection scoring.
	vocabs := map[string]map[string]uint32{}
	docCounts := map[string]int{}
	for _, sub := range corpus.Subcollections {
		lib, err := teraphim.BuildLibrarianWith(sub.Name, sub.Docs, teraphim.BuildOptions{Analyzer: analyzer})
		if err != nil {
			return err
		}
		libs = append(libs, lib)
		names = append(names, sub.Name)
		v := map[string]uint32{}
		lib.Engine().Index().Terms(func(term string, ft uint32) bool {
			v[term] = ft
			return true
		})
		vocabs[sub.Name] = v
		docCounts[sub.Name] = len(sub.Docs)
	}
	dialer := teraphim.NewInProcessDialer(libs, teraphim.LinkConfig{})
	recep, err := teraphim.ConnectReceptionist(dialer, names, teraphim.ReceptionistConfig{Analyzer: analyzer})
	if err != nil {
		return err
	}
	defer func() {
		recep.Close()
		dialer.Wait()
	}()
	if _, err := recep.SetupVocabulary(); err != nil {
		return err
	}

	queries := corpus.QueriesOf(trecsynth.ShortQuery)
	fmt.Printf("%d subcollections, %d queries\n\n", len(names), len(queries))
	fmt.Printf("%-10s %16s %16s\n", "librarians", "overlap@20 (%)", "postings vs full")

	for _, n := range []int{1, 2, 3, 6, 12} {
		var overlap, full float64
		var postingsSel, postingsFull float64
		for _, q := range queries {
			// Full-fleet CV answer as the reference.
			ref, err := recep.Query(teraphim.ModeCV, q.Text, 20, teraphim.Options{})
			if err != nil {
				return err
			}
			postingsFull += float64(ref.Trace.LibrarianWork().PostingsDecoded)

			// GlOSS-style selection: score each librarian by
			// sum over query terms of ft(lib)/docs(lib) weighted by global idf.
			selected := selectLibrarians(recep, vocabs, docCounts, analyzer, q.Text, n)
			// Evaluate by filtering the reference answers to selected
			// librarians (a CV query to a fleet subset returns exactly the
			// subset's answers, since scores are global).
			keep := map[string]bool{}
			for _, s := range selected {
				keep[s] = true
			}
			hits := 0
			for _, a := range ref.Answers {
				if keep[a.Librarian] {
					hits++
				}
			}
			if len(ref.Answers) > 0 {
				overlap += float64(hits) / float64(len(ref.Answers))
				full++
			}
			// Work saved: postings at selected librarians only.
			var sel float64
			for _, c := range ref.Trace.Calls {
				if keep[c.Librarian] {
					sel += float64(c.LibStats.PostingsDecoded)
				}
			}
			postingsSel += sel
		}
		fmt.Printf("top %-6d %15.1f%% %15.1f%%\n", n,
			100*overlap/full, 100*postingsSel/postingsFull)
	}
	fmt.Println("\nWith topically skewed subcollections, a handful of well-chosen librarians")
	fmt.Println("retain most of the top-20 answers at a fraction of the index work — the")
	fmt.Println("paper's route to making distribution pay for itself.")
	return nil
}

// selectLibrarians ranks librarians for a query by a GlOSS-style goodness
// estimate: Σ_t idf_global(t) · ft(lib,t)/numDocs(lib).
func selectLibrarians(recep *teraphim.Receptionist, vocabs map[string]map[string]uint32,
	docCounts map[string]int, analyzer *teraphim.Analyzer, query string, n int) []string {
	terms := analyzer.Terms(nil, query)
	weights, err := recep.GlobalWeights(query)
	if err != nil {
		return nil
	}
	type scored struct {
		name  string
		score float64
	}
	var ranking []scored
	for name, vocab := range vocabs {
		var s float64
		seen := map[string]bool{}
		for _, t := range terms {
			if seen[t] {
				continue
			}
			seen[t] = true
			if ft := vocab[t]; ft > 0 {
				idf := weights[t]
				s += idf * math.Log(float64(ft)+1) / math.Log(float64(docCounts[name])+1)
			}
		}
		ranking = append(ranking, scored{name, s})
	}
	sort.Slice(ranking, func(i, j int) bool {
		if ranking[i].score != ranking[j].score {
			return ranking[i].score > ranking[j].score
		}
		return strings.Compare(ranking[i].name, ranking[j].name) < 0
	})
	if n > len(ranking) {
		n = len(ranking)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = ranking[i].name
	}
	return out
}
