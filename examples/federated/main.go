// Federated search: three librarian servers on real TCP sockets, one
// shared federation comparing the CN and CV methodologies, then fanning
// several concurrent client sessions out over the connection pool — the
// paper's core architecture in ~100 lines.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"teraphim"
)

// Three topically distinct subcollections: the same query gets very
// different local statistics at each site, which is exactly what separates
// Central Nothing from Central Vocabulary.
var sites = map[string][]teraphim.Document{
	"news": {
		{Title: "news-0", Text: "The election results dominated the news cycle this week."},
		{Title: "news-1", Text: "Networks reported record election turnout across the country."},
		{Title: "news-2", Text: "A storm disrupted broadcast networks on election night."},
	},
	"tech": {
		{Title: "tech-0", Text: "Distributed systems replicate state across networks of machines."},
		{Title: "tech-1", Text: "The new database shards its index across many network nodes."},
		{Title: "tech-2", Text: "Compression reduces network transfer for distributed queries."},
	},
	"law": {
		{Title: "law-0", Text: "The court examined election law precedents from three states."},
		{Title: "law-1", Text: "Network regulation statutes were revised by the legislature."},
	},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	analyzer := teraphim.NewAnalyzer()

	// Start one librarian server per subcollection.
	dialer := teraphim.TCPDialer{}
	names := []string{"news", "tech", "law"}
	for _, name := range names {
		lib, err := teraphim.BuildLibrarianWith(name, sites[name], teraphim.BuildOptions{Analyzer: analyzer})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := teraphim.ServeLibrarian(lib, ln)
		defer srv.Close()
		dialer[name] = srv.Addr().String()
		fmt.Printf("librarian %-5s serving %d docs on %s\n", name, len(sites[name]), srv.Addr())
	}

	// One pool holds the shared federation state. The vocabulary merge
	// below runs exactly once; every session reuses it.
	pool, err := teraphim.ConnectPool(dialer, names, teraphim.ReceptionistConfig{Analyzer: analyzer})
	if err != nil {
		return err
	}
	defer pool.Close()
	if _, err := pool.SetupVocabulary(); err != nil {
		return err
	}
	terms, bytes := pool.Federation().VocabularySize()
	fmt.Printf("federation merged vocabulary: %d terms, %d bytes (set up once)\n\n", terms, bytes)

	query := "election networks"
	for _, mode := range []teraphim.Mode{teraphim.ModeCN, teraphim.ModeCV} {
		res, err := pool.Query(mode, query, 5, teraphim.Options{Fetch: true})
		if err != nil {
			return err
		}
		fmt.Printf("%s ranking for %q (asked %d librarians, merged %d candidates):\n",
			mode, query, res.Trace.LibrariansAsked, res.Trace.MergeCandidates)
		for i, a := range res.Answers {
			fmt.Printf("  %d. %-8s %.4f  %s\n", i+1, a.Key(), a.Score, a.Title)
		}
		fmt.Printf("  round trips: %d, bytes moved: %d\n\n",
			res.Trace.RoundTrips(0), res.Trace.BytesTransferred(0))
	}

	// Concurrent serving: each client is a lightweight session borrowing
	// pooled connections; none repeats the vocabulary setup.
	const clients = 4
	queries := []string{"election networks", "distributed index", "court statutes", "storm turnout"}
	tops := make([]string, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := pool.Session()
			res, err := sess.Query(teraphim.ModeCV, queries[c], 1, teraphim.Options{})
			if err != nil {
				errs <- err
				return
			}
			if len(res.Answers) > 0 {
				tops[c] = res.Answers[0].Key()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	fmt.Printf("%d concurrent CV sessions over one federation:\n", clients)
	for c, q := range queries {
		fmt.Printf("  client %d: %-20q top answer %s\n", c, q, tops[c])
	}

	fmt.Println()
	fmt.Println("Note how CN and CV can order answers differently: CN librarians weight")
	fmt.Println("\"election\" and \"networks\" by their own subcollection statistics, while CV")
	fmt.Println("ships uniform global weights, reproducing the monolithic ranking exactly.")
	return nil
}
