// Quickstart: build a collection, run a ranked query, fetch the winner.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"teraphim"
)

func main() {
	docs := []teraphim.Document{
		{Title: "intro", Text: "Text collections have traditionally been located at a single site " +
			"and managed as a monolithic whole."},
		{Title: "ranking", Text: "Ranked queries assign each document a similarity score and present " +
			"documents in decreasing similarity order."},
		{Title: "distribution", Text: "Distributed information retrieval spreads a collection over " +
			"several hosts; librarians manage subcollections and receptionists broker queries."},
		{Title: "efficiency", Text: "Network bandwidth and round trip times are crucial to the " +
			"efficiency of distributed query evaluation."},
	}

	lib, err := teraphim.BuildLibrarian("quickstart", docs)
	if err != nil {
		log.Fatal(err)
	}

	// Ranked retrieval with the cosine measure.
	ranking, err := lib.Engine().Rank("distributed ranked retrieval over a network", 3, nil)
	results, stats := ranking.Results, ranking.Stats
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query touched %d inverted lists, decoded %d postings\n\n",
		stats.ListsFetched, stats.PostingsDecoded)
	for i, r := range results {
		doc, err := lib.Store().Fetch(r.Doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d. %-14s score %.4f\n   %s\n", i+1, doc.Title, r.Score, doc.Text)
	}

	// Boolean retrieval over the same index.
	q, err := lib.Engine().ParseBoolean("(ranked OR distributed) AND NOT monolithic")
	if err != nil {
		log.Fatal(err)
	}
	matches, _ := lib.Engine().EvaluateBoolean(q)
	fmt.Printf("\nBoolean matches: %v\n", matches)

	// The whole collection — index and documents — lives compressed.
	fmt.Printf("\nstore: %d bytes raw, %d bytes compressed; index: %d bytes\n",
		lib.Store().RawSize(), lib.Store().CompressedSize(), lib.Engine().Index().SizeBytes())
}
