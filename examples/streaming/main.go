// Streaming ingestion: grow a live collection with Ingest/Flush while
// queries keep running, then compact the segments back to one.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	"teraphim"
)

func main() {
	seed := []teraphim.Document{
		{Title: "intro", Text: "Text collections have traditionally been located at a single site " +
			"and managed as a monolithic whole."},
		{Title: "distribution", Text: "Distributed information retrieval spreads a collection over " +
			"several hosts; librarians manage subcollections and receptionists broker queries."},
	}

	up, err := teraphim.NewUpdatableLibrarian("LIVE", seed, teraphim.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer up.Close()
	if err := up.ConfigureIngest(teraphim.IngestConfig{
		MinSegmentDocs: 2,
		MergeFanIn:     2,
	}); err != nil {
		log.Fatal(err)
	}

	dialer := teraphim.NewInProcessDialer(nil, teraphim.LinkConfig{})
	dialer.AddEndpoint("LIVE", up, teraphim.LinkConfig{})
	pool, err := teraphim.ConnectPool(dialer, []string{"LIVE"}, teraphim.ReceptionistConfig{
		Cache: &teraphim.CacheConfig{},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	// Every published batch or merge bumps the epoch; stale cached results
	// must not outlive the collection they were computed from.
	up.OnUpdate(pool.InvalidateCache)

	ctx := context.Background()
	batches := [][]teraphim.Document{
		{{Title: "ranking", Text: "Ranked queries assign each document a similarity score and " +
			"present documents in decreasing similarity order."}},
		{{Title: "efficiency", Text: "Network bandwidth and round trip times are crucial to the " +
			"efficiency of distributed query evaluation."}},
		{{Title: "updates", Text: "Streaming ingestion appends new documents as immutable segments " +
			"instead of rebuilding the whole collection."}},
	}

	sess := pool.Session()
	for i, batch := range batches {
		if err := up.Ingest(ctx, batch); err != nil {
			log.Fatal(err)
		}
		if err := up.Flush(ctx); err != nil {
			log.Fatal(err)
		}
		res, err := sess.Query(teraphim.ModeCN, "distributed ranked retrieval", 3, teraphim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		st := up.SegmentStats()
		fmt.Printf("after batch %d: %d docs in %d segment(s), epoch %d, top answer %q\n",
			i+1, st.TotalDocs, len(st.Segments), st.Epoch, res.Answers[0].Key())
	}

	// Compact folds every segment into one — rankings are identical before
	// and after by construction, only the segment count changes.
	if err := up.Compact(ctx); err != nil {
		log.Fatal(err)
	}
	st := up.SegmentStats()
	fmt.Printf("after compact: %d docs in %d segment(s), %d merge(s) total\n",
		st.TotalDocs, len(st.Segments), st.Merges)
}
