package teraphim

// Benchmarks regenerating the paper's tables. Each BenchmarkTableN* target
// measures the work behind one table of the evaluation section; run
//
//	go test -bench=Table -benchmem
//
// for the full sweep, or cmd/experiments for the formatted tables
// themselves. The deployment is built once and shared across benchmarks.

import (
	"io"
	"sync"
	"testing"

	"teraphim/internal/core"
	"teraphim/internal/costmodel"
	"teraphim/internal/experiments"
	"teraphim/internal/trecsynth"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
	benchErr    error
)

// benchConfig is a reduced-scale corpus so the full benchmark sweep stays
// in CI-friendly time; cmd/experiments uses the full configuration.
func benchConfig() trecsynth.Config {
	cfg := trecsynth.DefaultConfig()
	cfg.Subs = []trecsynth.SubSpec{
		{Name: "AP", NumDocs: 700},
		{Name: "FR", NumDocs: 450},
		{Name: "WSJ", NumDocs: 650},
		{Name: "ZIFF", NumDocs: 550},
	}
	cfg.VocabSize = 6000
	cfg.NumTopics = 30
	cfg.NumLongQueries = 12
	cfg.NumShortQueries = 16
	return cfg
}

func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchRunner, benchErr = experiments.NewRunner(benchConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRunner
}

// benchEffectiveness measures one Table 1 row: ranking a full query set to
// depth 1000 and scoring it.
func benchEffectiveness(b *testing.B, spec experiments.RunSpec, kind trecsynth.QueryKind) {
	r := runner(b)
	queries := r.Corpus.QueriesOf(kind)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Effectiveness(spec, queries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1MSandCVLong(b *testing.B) {
	benchEffectiveness(b, experiments.RunSpec{Label: "CV", Mode: core.ModeCV}, trecsynth.LongQuery)
}

func BenchmarkTable1MSandCVShort(b *testing.B) {
	benchEffectiveness(b, experiments.RunSpec{Label: "CV", Mode: core.ModeCV}, trecsynth.ShortQuery)
}

func BenchmarkTable1CNLong(b *testing.B) {
	benchEffectiveness(b, experiments.RunSpec{Label: "CN", Mode: core.ModeCN}, trecsynth.LongQuery)
}

func BenchmarkTable1CNShort(b *testing.B) {
	benchEffectiveness(b, experiments.RunSpec{Label: "CN", Mode: core.ModeCN}, trecsynth.ShortQuery)
}

func BenchmarkTable1CIK100Short(b *testing.B) {
	benchEffectiveness(b, experiments.RunSpec{Label: "CI", Mode: core.ModeCI, KPrime: 100, Group: 10}, trecsynth.ShortQuery)
}

func BenchmarkTable1CIK1000Short(b *testing.B) {
	benchEffectiveness(b, experiments.RunSpec{Label: "CI", Mode: core.ModeCI, KPrime: 1000, Group: 10}, trecsynth.ShortQuery)
}

// BenchmarkTable2WANEstimate measures the Table 2-derived WAN cost model
// applied to a real query trace.
func BenchmarkTable2WANEstimate(b *testing.B) {
	r := runner(b)
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)[:1]
	_, traces, err := r.Run(experiments.RunSpec{Label: "CN", Mode: core.ModeCN}, queries, 20, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := costmodel.WAN()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := costmodel.Estimate(cfg, traces[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchQuery measures one Table 3/4 cell's workload: a single distributed
// query under one mode (the cost model then maps its trace to each network
// configuration).
func benchQuery(b *testing.B, spec experiments.RunSpec, opts core.Options) {
	r := runner(b)
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		single := []trecsynth.Query{q}
		if _, _, err := r.Run(spec, single, 20, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3MS(b *testing.B) {
	benchQuery(b, experiments.RunSpec{Label: "MS", Mode: core.ModeMS}, core.Options{})
}

func BenchmarkTable3CN(b *testing.B) {
	benchQuery(b, experiments.RunSpec{Label: "CN", Mode: core.ModeCN}, core.Options{})
}

func BenchmarkTable3CV(b *testing.B) {
	benchQuery(b, experiments.RunSpec{Label: "CV", Mode: core.ModeCV}, core.Options{})
}

func BenchmarkTable3CI(b *testing.B) {
	benchQuery(b, experiments.RunSpec{Label: "CI", Mode: core.ModeCI, KPrime: 100, Group: 10}, core.Options{})
}

func BenchmarkTable4CN(b *testing.B) {
	benchQuery(b, experiments.RunSpec{Label: "CN", Mode: core.ModeCN},
		core.Options{Fetch: true, CompressedTransfer: true})
}

func BenchmarkTable4CV(b *testing.B) {
	benchQuery(b, experiments.RunSpec{Label: "CV", Mode: core.ModeCV},
		core.Options{Fetch: true, CompressedTransfer: true})
}

func BenchmarkTable4CI(b *testing.B) {
	benchQuery(b, experiments.RunSpec{Label: "CI", Mode: core.ModeCI, KPrime: 100, Group: 10},
		core.Options{Fetch: true, CompressedTransfer: true})
}

// BenchmarkSizesReport measures the §4 storage accounting (vocabulary,
// grouped vs full central index).
func BenchmarkSizesReport(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Sizes(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSkipping measures the §4 skipping ablation (CI candidate scoring
// with and without skip structures).
func BenchmarkSkipping(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Skipping(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupSize measures the CI group-size ablation sweep.
func BenchmarkGroupSize(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.GroupSizeAblation(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompressionAblation measures the compressed-vs-plain document
// transfer comparison.
func BenchmarkCompressionAblation(b *testing.B) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.CompressionAblation(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
