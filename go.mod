module teraphim

go 1.22
