package teraphim

// BenchmarkSearchKernel measures the ranked-evaluation hot path at two
// levels: the bare search.Engine (Rank at k=10/k=100 and ScoreDocs over a
// synthetic 5000-document collection) and the full deployment (one query
// under each methodology MS/CN/CV/CI at k=10 and k=100). Run
//
//	make bench
//
// which invokes the sweep with -benchmem and regenerates the "current"
// section of BENCH_search.json; the "baseline" section holds the same
// sweep recorded on the pre-kernel evaluator and is preserved across
// regenerations. The file is only (re)written when KERNEL_BENCH_SECTION
// is set, so the short smoke run inside `make verify` leaves it alone.

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"teraphim/internal/core"
	"teraphim/internal/index"
	"teraphim/internal/search"
	"teraphim/internal/textproc"
	"teraphim/internal/trecsynth"
)

var (
	kernelOnce   sync.Once
	kernelEngine *search.Engine
	kernelErr    error
)

// kernelBenchEngine builds the engine-level fixture: the same 5000-document,
// 2000-term collection the package-level BenchmarkRank in internal/search
// uses, so engine rows here are comparable with its history.
func kernelBenchEngine(b *testing.B) *search.Engine {
	b.Helper()
	kernelOnce.Do(func() {
		rng := rand.New(rand.NewSource(21))
		analyzer := textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming())
		ib := index.NewBuilder()
		for i := 0; i < 5000; i++ {
			var sb strings.Builder
			for j := 0; j < 60; j++ {
				sb.WriteString("w" + strconv.Itoa(rng.Intn(2000)) + " ")
			}
			ib.Add(analyzer.Terms(nil, sb.String()))
		}
		ix, err := ib.Build()
		if err != nil {
			kernelErr = err
			return
		}
		kernelEngine = search.NewEngine(ix, analyzer)
	})
	if kernelErr != nil {
		b.Fatal(kernelErr)
	}
	return kernelEngine
}

// kernelRow is one cell of BENCH_search.json. Bytes and allocs come from
// runtime.MemStats deltas over the timed loop, so they cover every goroutine
// involved in answering (librarians included), matching what -benchmem
// prints for the single-goroutine engine rows.
type kernelRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Ops         int     `json:"ops"`
	// CandidatesScored/PostingsDecoded are recorded for the evaluator rows
	// only (one untimed evaluation): they are what dynamic pruning saves,
	// and the exact row is the denominator for the reduction factor.
	CandidatesScored int    `json:"candidates_scored,omitempty"`
	PostingsDecoded  uint64 `json:"postings_decoded,omitempty"`
}

// kernelBenchFile is the before/after record: "baseline" is the seed
// evaluator, "current" the zero-allocation kernel.
type kernelBenchFile struct {
	Baseline []kernelRow `json:"baseline"`
	Current  []kernelRow `json:"current"`
}

// kernelMeasure runs one sub-benchmark and records its row. b.Run retries
// with growing b.N; keying by name keeps the final, most stable run.
func kernelMeasure(b *testing.B, rows map[string]kernelRow, name string, fn func(i int) error) {
	b.Run(name, func(b *testing.B) {
		b.ReportAllocs()
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fn(i); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&after)
		rows[name] = kernelRow{
			Name:        name,
			NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(b.N),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(b.N),
			Ops:         b.N,
		}
	})
}

func BenchmarkSearchKernel(b *testing.B) {
	rows := make(map[string]kernelRow)
	var order []string
	measure := func(name string, fn func(i int) error) {
		order = append(order, name)
		kernelMeasure(b, rows, name, fn)
	}

	e := kernelBenchEngine(b)
	const rankQuery = "w1 w2 w3 w4 w5 w6 w7 w8"
	for _, k := range []int{10, 100} {
		k := k
		measure("Engine/Rank/k="+strconv.Itoa(k), func(int) error {
			_, err := e.Rank(rankQuery, k, nil)
			return err
		})
	}
	// Evaluator dimension: the same ranking under exact evaluation and the
	// two rank-safe pruning evaluators, with the work drop (candidates fully
	// scored, postings decoded) recorded alongside the timing.
	for _, eval := range []search.Evaluator{search.EvalExact, search.EvalMaxScore, search.EvalWAND} {
		eval := eval
		for _, k := range []int{10, 100} {
			k := k
			name := "Engine/RankEval/" + eval.String() + "/k=" + strconv.Itoa(k)
			measure(name, func(int) error {
				_, err := e.RankEval(rankQuery, k, nil, eval)
				return err
			})
			if row, ok := rows[name]; ok {
				ranking, err := e.RankEval(rankQuery, k, nil, eval)
				if err != nil {
					b.Fatal(err)
				}
				row.CandidatesScored = ranking.Stats.CandidateDocs
				row.PostingsDecoded = ranking.Stats.PostingsDecoded
				rows[name] = row
			}
		}
	}

	targets := []uint32{10, 500, 900, 2500, 4000, 4500}
	measure("Engine/ScoreDocs", func(int) error {
		_, err := e.ScoreDocs(rankQuery, targets, nil)
		return err
	})

	// Deployment-level rows share bench_test.go's reduced-corpus runner.
	r := runner(b)
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	if _, err := r.GroupedIndex(10); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		label string
		mode  core.Mode
		opts  core.Options
	}{
		{"MS", core.ModeMS, core.Options{}},
		{"CN", core.ModeCN, core.Options{}},
		{"CV", core.ModeCV, core.Options{}},
		{"CI", core.ModeCI, core.Options{KPrime: 100}},
	} {
		mode := mode
		for _, k := range []int{10, 100} {
			k := k
			measure(mode.label+"/k="+strconv.Itoa(k), func(i int) error {
				q := queries[i%len(queries)].Text
				var err error
				if mode.mode == core.ModeMS {
					_, err = r.MonoServer().Query(q, k, mode.opts)
				} else {
					_, err = r.Receptionist().Query(mode.mode, q, k, mode.opts)
				}
				return err
			})
		}
	}

	section := os.Getenv("KERNEL_BENCH_SECTION")
	if section == "" || len(rows) == 0 {
		return
	}
	out := make([]kernelRow, 0, len(rows))
	for _, name := range order {
		if row, ok := rows[name]; ok {
			out = append(out, row)
		}
	}
	var file kernelBenchFile
	if data, err := os.ReadFile("BENCH_search.json"); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			b.Fatalf("BENCH_search.json: %v", err)
		}
	}
	switch section {
	case "baseline":
		file.Baseline = out
	case "current":
		file.Current = out
	default:
		b.Fatalf("KERNEL_BENCH_SECTION must be baseline or current, got %q", section)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_search.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_search.json section %q (%d rows)", section, len(out))
}
