package teraphim

// BenchmarkSelectThroughput measures what top-R collection selection buys as
// the fleet grows: topically-skewed corpora of 4, 16 and 64 subcollections
// (SkewedCorpusConfig) served over latency-shaped in-process links, swept
// across R. Each cell reports queries/sec, the mean number of librarians a
// query actually contacted, and effectiveness as overlap@10 against the
// same query at full fan-out — the trade the paper's scaling wall is about:
// fewer librarians asked per query buys throughput at a (measured) recall
// cost. Run
//
//	go test -bench=SelectThroughput -run='^$'
//
// `make bench-select` sets SELECT_BENCH_RECORD and regenerates
// BENCH_select.json (the smoke run in `make verify` leaves the recorded
// numbers alone).

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/trecsynth"
)

// selectBenchFleetSpec sizes one fleet of the sweep: many small
// subcollections, totals kept near 1000 documents so setup stays cheap as
// the librarian count grows.
var selectBenchFleetSpecs = []struct {
	librarians int
	docsPerSub int
}{
	{4, 150},
	{16, 50},
	{64, 16},
	// The 256-librarian cell probes the scaling wall at real fleet width.
	// Building (and Hello-ing) 256 librarians dominates a smoke run, so the
	// cell joins the sweep only when recording — see the guard in
	// BenchmarkSelectThroughput.
	{256, 4},
}

// selectBenchSmokeMaxLibs caps the sweep in smoke runs (no
// SELECT_BENCH_RECORD): fleets larger than this are skipped so
// `make bench-select-smoke` stays fast.
const selectBenchSmokeMaxLibs = 64

type selectBenchFleet struct {
	dialer  *InProcessDialer
	names   []string
	queries []string
	err     error
}

var (
	selectBenchMu     sync.Mutex
	selectBenchFleets = make(map[int]*selectBenchFleet)
)

// selectFleet builds (once per librarian count) a skewed corpus, its
// librarians and a latency-shaped dialer.
func selectFleet(b *testing.B, librarians, docsPerSub int) *selectBenchFleet {
	b.Helper()
	selectBenchMu.Lock()
	defer selectBenchMu.Unlock()
	if f, ok := selectBenchFleets[librarians]; ok {
		if f.err != nil {
			b.Fatal(f.err)
		}
		return f
	}
	f := &selectBenchFleet{}
	selectBenchFleets[librarians] = f
	corpus, err := trecsynth.Generate(trecsynth.SkewedConfig(librarians, docsPerSub))
	if err != nil {
		f.err = err
		b.Fatal(err)
	}
	var libs []*Librarian
	for _, sub := range corpus.Subcollections {
		lib, err := librarian.Build(sub.Name, sub.Docs, librarian.BuildOptions{})
		if err != nil {
			f.err = err
			b.Fatal(err)
		}
		libs = append(libs, lib)
		f.names = append(f.names, sub.Name)
	}
	// The same sub-millisecond one-way delay as BenchmarkPoolThroughput:
	// the workload is network-bound, so skipping librarians translates
	// directly into wall-clock time.
	f.dialer = NewInProcessDialer(libs, LinkConfig{Latency: 300 * time.Microsecond})
	for _, q := range corpus.QueriesOf(trecsynth.ShortQuery) {
		f.queries = append(f.queries, q.Text)
	}
	return f
}

// selectBenchRow is one sweep cell of BENCH_select.json.
type selectBenchRow struct {
	Librarians     int     `json:"librarians"`
	TopR           int     `json:"top_r"`
	Queries        int     `json:"queries"`
	Seconds        float64 `json:"seconds"`
	QueriesSec     float64 `json:"queries_per_sec"`
	MeanLibsAsked  float64 `json:"mean_librarians_asked"`
	OverlapAtTen   float64 `json:"overlap_at_10_vs_full"`
	EffectQueries  int     `json:"effectiveness_queries"`
}

// sweepRs returns the R values swept for one fleet: 1, quarter, half, all.
func sweepRs(librarians int) []int {
	seen := map[int]bool{}
	var rs []int
	for _, r := range []int{1, librarians / 4, librarians / 2, librarians} {
		if r >= 1 && !seen[r] {
			seen[r] = true
			rs = append(rs, r)
		}
	}
	sort.Ints(rs)
	return rs
}

// overlapAtK computes |top-k(got) ∩ top-k(want)| / |top-k(want)|, the
// fraction of the full-fan-out answers the narrowed query kept.
func overlapAtK(got, want []Answer, k int) float64 {
	if len(want) > k {
		want = want[:k]
	}
	if len(got) > k {
		got = got[:k]
	}
	if len(want) == 0 {
		return 1
	}
	keys := make(map[string]bool, len(want))
	for _, a := range want {
		keys[a.Key()] = true
	}
	n := 0
	for _, a := range got {
		if keys[a.Key()] {
			n++
		}
	}
	return float64(n) / float64(len(want))
}

func BenchmarkSelectThroughput(b *testing.B) {
	const clients = 4
	rows := make(map[string]selectBenchRow)
	record := os.Getenv("SELECT_BENCH_RECORD") != ""
	for _, spec := range selectBenchFleetSpecs {
		if !record && spec.librarians > selectBenchSmokeMaxLibs {
			continue
		}
		for _, topR := range sweepRs(spec.librarians) {
			name := fmt.Sprintf("libs=%d/topR=%d", spec.librarians, topR)
			b.Run(name, func(b *testing.B) {
				fleet := selectFleet(b, spec.librarians, spec.docsPerSub)
				pool, err := ConnectPool(fleet.dialer, fleet.names,
					ReceptionistConfig{MaxConnsPerLibrarian: clients})
				if err != nil {
					b.Fatal(err)
				}
				defer pool.Close()
				if _, err := pool.SetupVocabulary(); err != nil {
					b.Fatal(err)
				}

				// Untimed effectiveness pre-pass: overlap@10 against full
				// fan-out, and the fan-out width selection actually used.
				sess := pool.Session()
				probe := fleet.queries
				if len(probe) > 16 {
					probe = probe[:16]
				}
				var overlap, asked float64
				for _, q := range probe {
					full, err := sess.Query(ModeCV, q, 10, Options{})
					if err != nil {
						b.Fatal(err)
					}
					sel, err := sess.Query(ModeCV, q, 10, Options{TopR: topR})
					if err != nil {
						b.Fatal(err)
					}
					overlap += overlapAtK(sel.Answers, full.Answers, 10)
					asked += float64(sel.Trace.LibrariansAsked)
				}
				overlap /= float64(len(probe))
				asked /= float64(len(probe))

				work := make(chan int)
				errs := make(chan error, clients)
				var wg sync.WaitGroup
				b.ResetTimer()
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						sess := pool.Session()
						for i := range work {
							q := fleet.queries[i%len(fleet.queries)]
							if _, err := sess.Query(ModeCV, q, 10, Options{TopR: topR}); err != nil {
								errs <- err
								return
							}
						}
						errs <- nil
					}()
				}
				for i := 0; i < b.N; i++ {
					work <- i
				}
				close(work)
				wg.Wait()
				b.StopTimer()
				close(errs)
				for err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				secs := b.Elapsed().Seconds()
				var qps float64
				if secs > 0 {
					qps = float64(b.N) / secs
				}
				b.ReportMetric(qps, "queries/sec")
				b.ReportMetric(asked, "libs-asked")
				b.ReportMetric(overlap, "overlap@10")
				rows[name] = selectBenchRow{
					Librarians: spec.librarians, TopR: topR,
					Queries: b.N, Seconds: secs, QueriesSec: qps,
					MeanLibsAsked: asked, OverlapAtTen: overlap,
					EffectQueries: len(probe),
				}
			})
		}
	}
	if os.Getenv("SELECT_BENCH_RECORD") == "" || len(rows) == 0 {
		return
	}
	out := make([]selectBenchRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Librarians != out[j].Librarians {
			return out[i].Librarians < out[j].Librarians
		}
		return out[i].TopR < out[j].TopR
	})
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_select.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_select.json (%d rows)", len(out))
}
